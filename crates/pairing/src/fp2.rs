//! The quadratic extension `F_{p²} = F_p[i] / (i² + 1)`.
//!
//! Because the field prime satisfies `p ≡ 3 (mod 4)`, `−1` is a non-residue
//! and the polynomial `i² + 1` is irreducible.  The Frobenius endomorphism is
//! plain conjugation, which the final exponentiation of the Tate pairing
//! exploits: `z^p = conj(z)`.

use crate::error::PairingError;
use crate::fp::{Fp, FpCtx};
use crate::Result;
use rand::{CryptoRng, RngCore};
use std::sync::Arc;
use tibpre_bigint::Uint;

/// An element `c0 + c1·i` of `F_{p²}`.
#[derive(Clone, PartialEq, Eq)]
pub struct Fp2 {
    /// The coefficient of 1.
    pub c0: Fp,
    /// The coefficient of `i`.
    pub c1: Fp,
}

impl Fp2 {
    /// Constructs an element from its two coefficients.
    pub fn new(c0: Fp, c1: Fp) -> Self {
        Fp2 { c0, c1 }
    }

    /// The additive identity.
    pub fn zero(ctx: &Arc<FpCtx>) -> Self {
        Fp2 {
            c0: Fp::zero(ctx),
            c1: Fp::zero(ctx),
        }
    }

    /// The multiplicative identity.
    pub fn one(ctx: &Arc<FpCtx>) -> Self {
        Fp2 {
            c0: Fp::one(ctx),
            c1: Fp::zero(ctx),
        }
    }

    /// Embeds a base-field element.
    pub fn from_fp(value: Fp) -> Self {
        let zero = Fp::zero(value.ctx());
        Fp2 {
            c0: value,
            c1: zero,
        }
    }

    /// The imaginary unit `i`.
    pub fn i(ctx: &Arc<FpCtx>) -> Self {
        Fp2 {
            c0: Fp::zero(ctx),
            c1: Fp::one(ctx),
        }
    }

    /// Samples a uniformly random element.
    pub fn random<R: RngCore + CryptoRng>(ctx: &Arc<FpCtx>, rng: &mut R) -> Self {
        Fp2 {
            c0: Fp::random(ctx, rng),
            c1: Fp::random(ctx, rng),
        }
    }

    /// The field context of the coefficients.
    pub fn ctx(&self) -> &Arc<FpCtx> {
        self.c0.ctx()
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    /// Returns `true` for the multiplicative identity.
    pub fn is_one(&self) -> bool {
        self.c0.is_one() && self.c1.is_zero()
    }

    /// Addition.
    pub fn add(&self, other: &Fp2) -> Fp2 {
        Fp2 {
            c0: &self.c0 + &other.c0,
            c1: &self.c1 + &other.c1,
        }
    }

    /// Subtraction.
    pub fn sub(&self, other: &Fp2) -> Fp2 {
        Fp2 {
            c0: &self.c0 - &other.c0,
            c1: &self.c1 - &other.c1,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Fp2 {
        Fp2 {
            c0: self.c0.neg(),
            c1: self.c1.neg(),
        }
    }

    /// Multiplication: `(a0 + a1 i)(b0 + b1 i) = (a0 b0 − a1 b1) + (a0 b1 + a1 b0) i`.
    ///
    /// Lazy-reduction schoolbook: each output coefficient is one
    /// [`Fp::sum_of_products`] call, so the four cross products carry
    /// **once per coefficient** (two Montgomery reductions total) instead
    /// of once per base-field multiplication.  Karatsuba does not compose
    /// with lazy reduction — its `(a0+a1)(b0+b1) − a0b0 − a1b1` cross term
    /// needs the *reduced* partial products — which is why the strict
    /// oracle [`Self::mul_strict`] keeps that shape.  Results are
    /// bit-identical to the oracle.
    pub fn mul(&self, other: &Fp2) -> Fp2 {
        let neg_a1 = self.c1.neg();
        Fp2 {
            c0: Fp::sum_of_products(&[(&self.c0, &other.c0), (&neg_a1, &other.c1)]),
            c1: Fp::sum_of_products(&[(&self.c0, &other.c1), (&self.c1, &other.c0)]),
        }
    }

    /// Strict-reduction Karatsuba multiplication (3 base-field
    /// multiplications, every product reduced immediately).  This is the
    /// oracle the lazy [`Self::mul`] is tested bit-identical against; it
    /// also documents the historical shape of the hot path.
    pub fn mul_strict(&self, other: &Fp2) -> Fp2 {
        let a0b0 = &self.c0 * &other.c0;
        let a1b1 = &self.c1 * &other.c1;
        let sum_a = &self.c0 + &self.c1;
        let sum_b = &other.c0 + &other.c1;
        let cross = &(&sum_a * &sum_b) - &(&a0b0 + &a1b1);
        Fp2 {
            c0: &a0b0 - &a1b1,
            c1: cross,
        }
    }

    /// Squaring: `(a0 + a1 i)² = (a0+a1)(a0−a1) + 2 a0 a1 i`.
    ///
    /// Stays on the strict two-multiplication form: lazy schoolbook for a
    /// square costs three wide products plus two deferred reductions,
    /// which is strictly more limb work than these two reduced products —
    /// the lazy win exists only where the naive form needs ≥ 4 products
    /// ([`Self::mul`], [`Self::mul_by_line`], the fused line evaluations).
    pub fn square(&self) -> Fp2 {
        let plus = &self.c0 + &self.c1;
        let minus = &self.c0 - &self.c1;
        let cross = &self.c0 * &self.c1;
        Fp2 {
            c0: &plus * &minus,
            c1: cross.double(),
        }
    }

    /// Multiplication by a Miller-loop line value `real + y·i` given as its
    /// two coefficients, without materialising a temporary `Fp2` (the
    /// prepared-pairing evaluation calls this once per stored line).
    /// Lazy-reduction schoolbook, exactly like [`Self::mul`].
    pub fn mul_by_line(&self, real: &Fp, y: &Fp) -> Fp2 {
        let neg_a1 = self.c1.neg();
        Fp2 {
            c0: Fp::sum_of_products(&[(&self.c0, real), (&neg_a1, y)]),
            c1: Fp::sum_of_products(&[(&self.c0, y), (&self.c1, real)]),
        }
    }

    /// Strict-reduction Karatsuba form of [`Self::mul_by_line`] — the
    /// oracle the lazy path is tested bit-identical against.
    pub fn mul_by_line_strict(&self, real: &Fp, y: &Fp) -> Fp2 {
        let a0b0 = &self.c0 * real;
        let a1b1 = &self.c1 * y;
        let sum_a = &self.c0 + &self.c1;
        let sum_b = real + y;
        let cross = &(&sum_a * &sum_b) - &(&a0b0 + &a1b1);
        Fp2 {
            c0: &a0b0 - &a1b1,
            c1: cross,
        }
    }

    /// Complex conjugation `a0 − a1 i`, which equals the Frobenius map `z ↦ z^p`.
    pub fn conjugate(&self) -> Fp2 {
        Fp2 {
            c0: self.c0.clone(),
            c1: self.c1.neg(),
        }
    }

    /// The norm `a0² + a1²` (an element of `F_p`).
    pub fn norm(&self) -> Fp {
        &self.c0.square() + &self.c1.square()
    }

    /// Multiplicative inverse via the norm map.  Fails for zero.
    pub fn invert(&self) -> Result<Fp2> {
        if self.is_zero() {
            return Err(PairingError::NotInvertible);
        }
        let norm_inv = self.norm().invert()?;
        Ok(Fp2 {
            c0: &self.c0 * &norm_inv,
            c1: &self.c1.neg() * &norm_inv,
        })
    }

    /// Multiplication by a base-field scalar.
    pub fn mul_fp(&self, k: &Fp) -> Fp2 {
        Fp2 {
            c0: &self.c0 * k,
            c1: &self.c1 * k,
        }
    }

    /// Exponentiation by an arbitrary integer exponent (square-and-multiply).
    pub fn pow(&self, exp: &Uint) -> Fp2 {
        let bits = exp.bits();
        let mut acc = Fp2::one(self.ctx());
        if bits == 0 {
            return acc;
        }
        for i in (0..bits).rev() {
            acc = acc.square();
            if exp.bit(i) {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Canonical encoding `c0 || c1` (fixed length).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.c0.to_bytes();
        out.extend(self.c1.to_bytes());
        out
    }

    /// Decodes the canonical encoding.
    pub fn from_bytes(ctx: &Arc<FpCtx>, bytes: &[u8]) -> Result<Fp2> {
        let field_len = ctx.byte_len();
        if bytes.len() != 2 * field_len {
            return Err(PairingError::InvalidEncoding("wrong Fp2 length"));
        }
        Ok(Fp2 {
            c0: Fp::from_bytes(ctx, &bytes[..field_len])?,
            c1: Fp::from_bytes(ctx, &bytes[field_len..])?,
        })
    }
}

impl core::fmt::Debug for Fp2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp2({:?} + {:?}·i)", self.c0, self.c1)
    }
}

macro_rules! impl_fp2_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl core::ops::$trait<&Fp2> for &Fp2 {
            type Output = Fp2;
            fn $method(self, rhs: &Fp2) -> Fp2 {
                Fp2::$inner(self, rhs)
            }
        }
        impl core::ops::$trait<Fp2> for Fp2 {
            type Output = Fp2;
            fn $method(self, rhs: Fp2) -> Fp2 {
                Fp2::$inner(&self, &rhs)
            }
        }
    };
}

impl_fp2_binop!(Add, add, add);
impl_fp2_binop!(Sub, sub, sub);
impl_fp2_binop!(Mul, mul, mul);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> Arc<FpCtx> {
        FpCtx::new(&Uint::from_u128((1u128 << 127) - 1)).unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn i_squared_is_minus_one() {
        let c = ctx();
        let i = Fp2::i(&c);
        let minus_one = Fp2::from_fp(Fp::one(&c).neg());
        assert_eq!(i.square(), minus_one);
        assert_eq!(i.mul(&i), minus_one);
    }

    #[test]
    fn field_axioms_spot_checks() {
        let c = ctx();
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp2::random(&c, &mut r);
            let b = Fp2::random(&c, &mut r);
            let d = Fp2::random(&c, &mut r);
            // Commutativity and associativity.
            assert_eq!(a.add(&b), b.add(&a));
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b).mul(&d), a.mul(&b.mul(&d)));
            // Distributivity.
            assert_eq!(a.mul(&b.add(&d)), a.mul(&b).add(&a.mul(&d)));
            // Identities.
            assert_eq!(a.add(&Fp2::zero(&c)), a);
            assert_eq!(a.mul(&Fp2::one(&c)), a);
            // Squaring consistency.
            assert_eq!(a.square(), a.mul(&a));
            // Negation.
            assert!(a.add(&a.neg()).is_zero());
        }
    }

    #[test]
    fn inversion_round_trip() {
        let c = ctx();
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp2::random(&c, &mut r);
            if a.is_zero() {
                continue;
            }
            let inv = a.invert().unwrap();
            assert!(a.mul(&inv).is_one());
        }
        assert!(Fp2::zero(&c).invert().is_err());
    }

    #[test]
    fn conjugation_is_frobenius() {
        let c = ctx();
        let mut r = rng();
        let a = Fp2::random(&c, &mut r);
        // z^p == conj(z)
        assert_eq!(a.pow(c.modulus()), a.conjugate());
        // conj(conj(z)) == z and conj is multiplicative.
        assert_eq!(a.conjugate().conjugate(), a);
        let b = Fp2::random(&c, &mut r);
        assert_eq!(a.mul(&b).conjugate(), a.conjugate().mul(&b.conjugate()));
    }

    #[test]
    fn norm_is_multiplicative() {
        let c = ctx();
        let mut r = rng();
        let a = Fp2::random(&c, &mut r);
        let b = Fp2::random(&c, &mut r);
        assert_eq!(a.mul(&b).norm(), &a.norm() * &b.norm());
        // norm(z) = z * conj(z)
        assert_eq!(Fp2::from_fp(a.norm()), a.mul(&a.conjugate()));
    }

    #[test]
    fn pow_edge_cases() {
        let c = ctx();
        let mut r = rng();
        let a = Fp2::random(&c, &mut r);
        assert!(a.pow(&Uint::ZERO).is_one());
        assert_eq!(a.pow(&Uint::ONE), a);
        assert_eq!(a.pow(&Uint::from_u64(2)), a.square());
        assert_eq!(a.pow(&Uint::from_u64(5)), a.square().square().mul(&a));
        // Lagrange: the multiplicative group has order p² − 1.
        let p = c.modulus();
        let (lo, hi) = p.mul_wide(p);
        assert!(hi.is_zero());
        let group_order = lo.wrapping_sub(&Uint::ONE);
        assert!(a.pow(&group_order).is_one() || a.is_zero());
    }

    #[test]
    fn byte_round_trip() {
        let c = ctx();
        let mut r = rng();
        let a = Fp2::random(&c, &mut r);
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), 2 * c.byte_len());
        assert_eq!(Fp2::from_bytes(&c, &bytes).unwrap(), a);
        assert!(Fp2::from_bytes(&c, &bytes[1..]).is_err());
    }

    #[test]
    fn mul_by_line_matches_general_mul() {
        let c = ctx();
        let mut r = rng();
        for _ in 0..5 {
            let f = Fp2::random(&c, &mut r);
            let real = Fp::random(&c, &mut r);
            let y = Fp::random(&c, &mut r);
            assert_eq!(
                f.mul_by_line(&real, &y),
                f.mul(&Fp2::new(real.clone(), y.clone()))
            );
        }
    }

    #[test]
    fn lazy_mul_is_bit_identical_to_strict_karatsuba() {
        let c = ctx();
        let mut r = rng();
        // Random operands plus the adversarial corners: zero, one, i,
        // near-p coefficients, and all-ones-limb coefficients.
        let near_p = Fp::from_uint(&c, &c.modulus().wrapping_sub(&Uint::ONE));
        let ones = Fp::from_uint(&c, &Uint::from_u128(u128::MAX));
        let mut cases = vec![
            Fp2::zero(&c),
            Fp2::one(&c),
            Fp2::i(&c),
            Fp2::new(near_p.clone(), near_p.clone()),
            Fp2::new(ones.clone(), near_p),
        ];
        for _ in 0..20 {
            cases.push(Fp2::random(&c, &mut r));
        }
        for a in &cases {
            for b in &cases {
                let lazy = a.mul(b);
                let strict = a.mul_strict(b);
                assert_eq!(lazy.to_bytes(), strict.to_bytes());
                let lazy = a.mul_by_line(&b.c0, &b.c1);
                let strict = a.mul_by_line_strict(&b.c0, &b.c1);
                assert_eq!(lazy.to_bytes(), strict.to_bytes());
            }
        }
    }

    #[test]
    fn mul_fp_matches_embedding() {
        let c = ctx();
        let mut r = rng();
        let a = Fp2::random(&c, &mut r);
        let k = Fp::from_u64(&c, 12345);
        assert_eq!(a.mul_fp(&k), a.mul(&Fp2::from_fp(k)));
    }
}
