//! Precomputation for fixed bases and fixed pairing arguments.
//!
//! The TIB-PRE scheme fixes `g` and `pk = g^α` at `Setup` and re-uses the
//! same pairing arguments (`H1(id)`, private keys, re-encryption keys) across
//! every `Encrypt` / `Preenc` call, yet the generic code paths recompute
//! windowed ladders and full Miller loops from scratch each time.  This module
//! provides the two classic amortisations:
//!
//! * [`G1Precomp`] — a fixed-base table holding every window multiple
//!   `(j · 2^{4w}) · P`, so a scalar multiplication by the fixed base needs
//!   only mixed *additions* (one per non-zero window digit) and no doublings
//!   at all.  In the paper's symmetric ("Type 1") setting there is a single
//!   source group, so the same type serves both `g` and `g^α` — the role a
//!   `G2Precomp` would play in an asymmetric pairing.
//! * [`PreparedPairing`] — BKLS-style fixed-argument pairing precomputation:
//!   the Miller loop for a fixed first argument `P` is executed once and the
//!   per-step *line coefficients* are stored, so each subsequent pairing
//!   `ê(P, Q)` only evaluates the stored lines at `φ(Q)` and runs the final
//!   exponentiation.  Because the pairing is symmetric (`ê(P, Q) = ê(Q, P)`,
//!   exercised by the test-suite), preparing `P` accelerates pairings with
//!   `P` in *either* position.
//!
//! Every stored line is normalised to `ℓ(φ(Q)) = (a + b·x_Q) + y_Q·i` by
//! dividing out the `y_Q` coefficient (a batch inversion at preparation
//! time); the dropped `F_p^*` factor is annihilated by the final
//! exponentiation, so the *reduced* pairing value is bit-identical to the
//! naive path.  The naive paths ([`G1Affine::mul_scalar`],
//! [`crate::params::PairingParams::pairing`]) stay alive as test oracles.
//!
//! # Thread safety
//!
//! Both table types are **immutable after construction** — evaluation only
//! reads the stored windows / line coefficients — so a table behind an `Arc`
//! can be shared by any number of threads without locking.  This is the
//! contract the multi-threaded re-encryption engine (`tibpre-engine`) relies
//! on: it forces a key's lazy preparation *once*, on the dispatching thread,
//! then lets every worker evaluate the shared table concurrently.

use crate::curve::{batch_to_affine, G1Affine, G1Projective};
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::gt::Gt;
use crate::pairing::{
    final_exponentiation_batch, final_exponentiation_with_digits, wnaf_digits, MillerPoint,
    RawAddStep,
};
use crate::params::PairingParams;
use crate::scalar::Scalar;
use std::sync::Arc;
use tibpre_bigint::Uint;

/// Window width (bits) of the fixed-base tables.
const WINDOW: usize = 4;
/// Non-zero digits per window: `2^WINDOW − 1`.
const TABLE_LEN: usize = (1 << WINDOW) - 1;

/// A fixed-base multiplication table for one point `P`.
///
/// `table[w][j] = (j + 1) · 2^{4w} · P` in affine coordinates, for every
/// 4-bit window `w` of a scalar up to [`Self::max_bits`] bits.  A scalar
/// multiplication then reduces to at most one mixed addition per window —
/// no doublings — which is several times faster than the generic windowed
/// ladder for the scalar sizes the scheme uses.
///
/// Building the table costs one doubling/addition per entry plus a single
/// batched inversion to normalise everything to affine; it pays for itself
/// after a handful of multiplications by the same base.
#[derive(Clone, Debug)]
pub struct G1Precomp {
    point: G1Affine,
    table: Vec<Vec<G1Affine>>,
    max_bits: usize,
}

impl G1Precomp {
    /// Tabulates the window multiples of `point` for scalars up to `max_bits`
    /// bits (rounded up to a whole number of windows).
    pub fn new(point: &G1Affine, max_bits: usize) -> Self {
        let windows = max_bits.div_ceil(WINDOW).max(1);
        let mut entries: Vec<G1Projective> = Vec::with_capacity(windows * TABLE_LEN);
        let mut base = G1Projective::from_affine(point);
        for _ in 0..windows {
            let start = entries.len();
            entries.push(base.clone());
            for j in 1..TABLE_LEN {
                // (j + 1)·base: even multiples from a doubling, odd ones from
                // one addition — the same chain the generic ladder uses.
                let next = if (j + 1) % 2 == 0 {
                    entries[start + j.div_ceil(2) - 1].double()
                } else {
                    entries[start + j - 1].add(&base)
                };
                entries.push(next);
            }
            // Next window's base is 2^WINDOW·base = 2 · (8·base).
            base = entries[start + 7].double();
        }
        let affine = batch_to_affine(&entries);
        let table = affine.chunks(TABLE_LEN).map(<[G1Affine]>::to_vec).collect();
        G1Precomp {
            point: point.clone(),
            table,
            max_bits: windows * WINDOW,
        }
    }

    /// The fixed base point this table belongs to.
    pub fn point(&self) -> &G1Affine {
        &self.point
    }

    /// Largest scalar bit-length the table covers; bigger scalars fall back
    /// to the generic ladder.
    pub fn max_bits(&self) -> usize {
        self.max_bits
    }

    /// Fixed-base scalar multiplication `k·P` via the table.
    ///
    /// Produces the exact same group element as the naive
    /// [`G1Affine::mul_uint`] (the oracle-equivalence suite asserts
    /// bit-identical encodings).
    pub fn mul_uint(&self, k: &Uint) -> G1Affine {
        if k.bits() > self.max_bits {
            // Out-of-range scalar (never produced by Z_q arithmetic): take
            // the generic ladder rather than mis-computing.
            return self.point.mul_uint(k);
        }
        let mut acc = G1Projective::identity(self.point.ctx());
        for (w, entries) in self.table.iter().enumerate() {
            let mut digit = 0usize;
            for b in (0..WINDOW).rev() {
                digit = (digit << 1) | usize::from(k.bit(w * WINDOW + b));
            }
            if digit != 0 {
                acc = acc.add_affine(&entries[digit - 1]);
            }
        }
        acc.to_affine()
    }

    /// Fixed-base scalar multiplication by an element of `Z_q`.
    pub fn mul_scalar(&self, k: &Scalar) -> G1Affine {
        self.mul_uint(&k.to_uint())
    }
}

/// A Miller-loop line with the fixed argument baked in, normalised so the
/// `y_Q` coefficient is one: `ℓ(φ(Q)) = (a + b·x_Q) + y_Q·i`.
#[derive(Clone, Debug)]
struct PreparedLine {
    a: Fp,
    b: Fp,
}

impl PreparedLine {
    /// Folds `f · ℓ(φ(Q))` in one sparse multiplication: evaluating the line
    /// costs a single base-field multiplication (`b·x_Q`), and the product
    /// avoids materialising the line as a temporary `Fp2`.
    fn mul_into(&self, f: &Fp2, xq: &Fp, yq: &Fp) -> Fp2 {
        f.mul_by_line(&(&self.a + &self.b.mul(xq)), yq)
    }
}

/// One digit of the prepared Miller loop: the tangent line of the doubling
/// step, plus the chord line of the addition step when the NAF digit is
/// non-zero (`+1` adds `P`, `−1` adds `−P`; the `f_{−1}` factor a
/// subtraction formally contributes is a vertical, which denominator
/// elimination drops).
///
/// Either line may be absent — exactly where the loop multiplies no line:
/// zero digits, vertical tangents/chords (eliminated by the final
/// exponentiation), and steps where the running point has reached the
/// identity.  In particular the *last* addition step of any prime-order input
/// lands on `±P` and produces a vertical chord, so `add = None` there is the
/// normal case, not an anomaly.
#[derive(Clone, Debug)]
struct PreparedStep {
    dbl: Option<PreparedLine>,
    add: Option<PreparedLine>,
}

/// A pairing with one argument fixed and its Miller loop pre-tabulated.
///
/// Preparation runs one Jacobian Miller loop over the *NAF*
/// addition-subtraction chain of the group order (about a third fewer
/// addition steps than the binary chain; a `−1` digit adds `−P`, whose
/// formal `f_{−1}` factor is a vertical annihilated by the final
/// exponentiation), plus one batched inversion to normalise the line
/// coefficients.  Every subsequent [`Self::pairing`] call against the fixed
/// argument only squares the accumulator, evaluates the stored lines at
/// `φ(Q)` (two base-field multiplications per line), and applies the final
/// exponentiation.
///
/// The *reduced* result is bit-identical to
/// [`crate::params::PairingParams::pairing`] for every input: different
/// addition chains (and the degenerate vertical/identity cases, stored here
/// as line-less steps) change the unreduced Miller value only by `F_p^*`
/// factors, which the final exponentiation kills.
#[derive(Clone, Debug)]
pub struct PreparedPairing {
    point: G1Affine,
    steps: Vec<PreparedStep>,
    /// The cofactor's wNAF recoding, shared with the parameter set.
    cofactor_digits: Arc<Vec<i8>>,
}

impl PreparedPairing {
    /// Runs the Miller loop for `point` (as the fixed argument) once and
    /// stores the per-step line coefficients.
    pub fn new(params: &PairingParams, point: &G1Affine) -> Self {
        let cofactor_digits = params.cofactor_wnaf();
        if point.is_identity() {
            // The generic loop returns 1 immediately; an empty step table
            // evaluates to the same thing.
            return PreparedPairing {
                point: point.clone(),
                steps: Vec::new(),
                cofactor_digits,
            };
        }

        // Replay the Miller loop over the NAF digits of the order, collecting
        // raw line coefficients.  The degenerate-case handling mirrors
        // `crate::pairing::miller_loop` (the regression tests cross-check the
        // reduced outputs of the two loops).
        let digits = wnaf_digits(params.q(), 2);
        debug_assert_eq!(
            digits.last(),
            Some(&1),
            "NAF of a positive order starts with +1"
        );
        let neg_point = point.neg();
        let mut t = MillerPoint::from_affine(point);
        let mut raw: Vec<(Option<_>, Option<_>)> = Vec::with_capacity(digits.len());
        for &digit in digits.iter().rev().skip(1) {
            let mut dbl = None;
            let mut add = None;
            if !t.is_identity() {
                if t.y_is_zero() {
                    // Vertical tangent (2-torsion): no line to store.
                    t = MillerPoint::identity(point);
                } else {
                    dbl = Some(t.double_step_coeffs());
                }
            }
            if digit != 0 && !t.is_identity() {
                let addend = if digit > 0 { point } else { &neg_point };
                match t.add_step_coeffs(addend) {
                    RawAddStep::Line(line) => add = Some(*line),
                    RawAddStep::Tangent if t.y_is_zero() => {
                        t = MillerPoint::identity(point);
                    }
                    RawAddStep::Tangent => add = Some(t.double_step_coeffs()),
                    RawAddStep::Vertical => t = MillerPoint::identity(point),
                }
            }
            raw.push((dbl, add));
        }

        // Normalise every stored line so its y_Q coefficient is 1, with one
        // batched inversion for the whole loop.  Whenever a line *is* stored,
        // its denominator `cy` (`Z'·Z²` for tangents, `Z'` for chords) is
        // non-zero, because the producing step left a non-identity point.
        let cys: Vec<Fp> = raw
            .iter()
            .flat_map(|(d, a)| d.iter().chain(a.iter()).map(|l| l.cy.clone()))
            .collect();
        let cy_invs =
            Fp::batch_invert(&cys).expect("stored Miller lines have non-zero denominators");
        let mut inv_iter = cy_invs.into_iter();
        let mut normalise = |line: &crate::pairing::RawLine| {
            let inv = inv_iter.next().expect("one inverse per stored line");
            PreparedLine {
                a: line.c0.mul(&inv),
                b: line.cx.mul(&inv),
            }
        };
        let steps = raw
            .iter()
            .map(|(d, a)| PreparedStep {
                dbl: d.as_ref().map(&mut normalise),
                add: a.as_ref().map(&mut normalise),
            })
            .collect();

        PreparedPairing {
            point: point.clone(),
            steps,
            cofactor_digits,
        }
    }

    /// The fixed pairing argument.
    pub fn point(&self) -> &G1Affine {
        &self.point
    }

    /// The unreduced Miller value `f_{q,P}(φ(Q))`, up to `F_p^*` factors
    /// (exactly like [`crate::pairing::miller_loop`], whose output differs by
    /// the normalisation scaling; the two agree after the final
    /// exponentiation).
    pub fn miller_loop(&self, q: &G1Affine) -> Fp2 {
        let ctx = self.point.ctx();
        if q.is_identity() {
            return Fp2::one(ctx);
        }
        let xq = q.x();
        let yq = q.y();
        let mut f = Fp2::one(ctx);
        for step in &self.steps {
            f = f.square();
            if let Some(dbl) = &step.dbl {
                f = dbl.mul_into(&f, xq, yq);
            }
            if let Some(add) = &step.add {
                f = add.mul_into(&f, xq, yq);
            }
        }
        f
    }

    /// The reduced pairing `ê(P, Q)` against the fixed argument —
    /// bit-identical to [`crate::params::PairingParams::pairing`] on the same
    /// inputs (in either argument order, by symmetry).
    pub fn pairing(&self, q: &G1Affine) -> Gt {
        let unreduced = self.miller_loop(q);
        let reduced = final_exponentiation_with_digits(&unreduced, &self.cofactor_digits)
            .expect("Miller values are never zero for points on the curve");
        Gt::from_fp2_unchecked(reduced)
    }

    /// Reduced pairings `ê(P, Qᵢ)` for a whole batch of second arguments.
    ///
    /// Runs one stored-line Miller loop per `Qᵢ`, then a *batched* final
    /// exponentiation: the easy part `f^{p−1} = conj(f)²·N(f)^{−1}` needs one
    /// base-field inversion per element, and Montgomery's trick collapses all
    /// `k` of them into a single extended GCD.  The hard (cofactor) part is
    /// still per-element, so the win is the amortised inversion, not the
    /// whole final exponentiation.
    ///
    /// Element-wise bit-identical to `k` independent [`Self::pairing`] calls
    /// (canonical representatives of equal field elements are unique).
    pub fn pairing_batch(&self, qs: &[&G1Affine]) -> Vec<Gt> {
        let fs: Vec<Fp2> = qs.iter().map(|q| self.miller_loop(q)).collect();
        final_exponentiation_batch(&fs, &self.cofactor_digits)
            .expect("Miller values are never zero for points on the curve")
            .into_iter()
            .map(Gt::from_fp2_unchecked)
            .collect()
    }
}

/// The product of pairings `∏ᵢ ê(Pᵢ, Qᵢ)` over prepared first arguments, in
/// one shared Miller loop and **one** final exponentiation.
///
/// Every prepared table built from the same parameter set replays the same
/// NAF of the group order, so all the non-degenerate tables have the same
/// step count and the loops run in lockstep: per step the shared accumulator
/// is squared *once* and every pair folds in its stored lines.  Squaring
/// distributes over products, so after the loop the accumulator is exactly
/// `∏ᵢ fᵢ`; the final exponentiation is a power map and hence multiplicative,
/// so the reduced result is bit-identical to multiplying the `k` individual
/// [`PreparedPairing::pairing`] outputs in [`Gt`].
///
/// Pairs whose fixed argument or `Qᵢ` is the identity contribute a factor `1`
/// and are skipped.  A table with a step count different from the rest (only
/// possible by mixing parameter sets, which the field contexts reject
/// anyway) falls back to its own Miller loop, folded into the product before
/// the final exponentiation.
///
/// Returns `None` for an empty slice — there is no field context to build
/// the identity in; [`crate::params::PairingParams::multi_pairing`] supplies
/// it.
pub fn multi_pairing(pairs: &[(&PreparedPairing, &G1Affine)]) -> Option<Gt> {
    let (first, _) = pairs.first()?;
    let ctx = first.point.ctx();
    // Degenerate pairs (identity on either side) pair to 1: skip them.
    let active: Vec<&(&PreparedPairing, &G1Affine)> = pairs
        .iter()
        .filter(|(prep, q)| !prep.steps.is_empty() && !q.is_identity())
        .collect();
    let len = active
        .iter()
        .map(|(prep, _)| prep.steps.len())
        .max()
        .unwrap_or(0);
    let (lockstep, stragglers): (Vec<_>, Vec<_>) = active
        .into_iter()
        .partition(|(prep, _)| prep.steps.len() == len);
    debug_assert!(
        stragglers.is_empty(),
        "prepared tables from one parameter set share a step count"
    );

    let mut f = Fp2::one(ctx);
    for i in 0..len {
        f = f.square();
        for (prep, q) in &lockstep {
            let step = &prep.steps[i];
            if let Some(dbl) = &step.dbl {
                f = dbl.mul_into(&f, q.x(), q.y());
            }
            if let Some(add) = &step.add {
                f = add.mul_into(&f, q.x(), q.y());
            }
        }
    }
    for (prep, q) in &stragglers {
        f = f.mul(&prep.miller_loop(q));
    }

    let reduced = final_exponentiation_with_digits(&f, &first.cofactor_digits)
        .expect("Miller values are never zero for points on the curve");
    Some(Gt::from_fp2_unchecked(reduced))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x9E11)
    }

    #[test]
    fn fixed_base_table_matches_naive_ladder() {
        let pp = PairingParams::insecure_toy();
        let mut r = rng();
        let table = G1Precomp::new(pp.generator(), pp.q().bits());
        assert_eq!(table.point(), pp.generator());
        for _ in 0..8 {
            let k = pp.random_scalar(&mut r);
            let fast = table.mul_scalar(&k);
            let naive = pp.generator().mul_scalar(&k);
            assert_eq!(fast, naive);
            assert_eq!(fast.to_bytes(), naive.to_bytes());
        }
        // Edge scalars.
        assert!(table.mul_uint(&Uint::ZERO).is_identity());
        assert_eq!(&table.mul_uint(&Uint::ONE), pp.generator());
        let q_minus_1 = pp.q().wrapping_sub(&Uint::ONE);
        assert_eq!(
            table.mul_uint(&q_minus_1),
            pp.generator().mul_uint(&q_minus_1)
        );
        // Out-of-range scalars take the generic fallback.
        let huge = pp.q().shl(7);
        assert!(huge.bits() > table.max_bits());
        assert_eq!(table.mul_uint(&huge), pp.generator().mul_uint(&huge));
    }

    #[test]
    fn fixed_base_table_for_the_identity() {
        let pp = PairingParams::insecure_toy();
        let id = pp.g1_identity();
        let table = G1Precomp::new(&id, pp.q().bits());
        assert!(table.mul_uint(&Uint::from_u64(12345)).is_identity());
    }

    #[test]
    fn prepared_pairing_matches_naive_pairing() {
        let pp = PairingParams::insecure_toy();
        let mut r = rng();
        for _ in 0..4 {
            let fixed = pp.random_g1(&mut r);
            let prepared = PreparedPairing::new(&pp, &fixed);
            assert_eq!(prepared.point(), &fixed);
            for _ in 0..3 {
                let q = pp.random_g1(&mut r);
                let fast = prepared.pairing(&q);
                assert_eq!(fast, pp.pairing(&fixed, &q));
                // Symmetry: preparing the "second" argument is the same thing.
                assert_eq!(fast, pp.pairing(&q, &fixed));
                assert_eq!(fast.to_bytes(), pp.pairing(&fixed, &q).to_bytes());
            }
            assert!(prepared.pairing(&pp.g1_identity()).is_one());
        }
    }

    #[test]
    fn prepared_generator_reproduces_gt_generator() {
        let pp = PairingParams::insecure_toy();
        let prepared = PreparedPairing::new(&pp, pp.generator());
        assert_eq!(&prepared.pairing(pp.generator()), pp.gt_generator());
    }

    #[test]
    fn degenerate_fixed_arguments_match_the_generic_loop() {
        let pp = PairingParams::insecure_toy();
        // Identity: empty step table, pairing is 1.
        let prepared = PreparedPairing::new(&pp, &pp.g1_identity());
        assert!(prepared.pairing(pp.generator()).is_one());
        // 2-torsion point (0, 0): the vertical tangent becomes a line-less
        // step, exactly as the generic loop drops it.
        let two_torsion = G1Affine::new(Fp::zero(pp.fp_ctx()), Fp::zero(pp.fp_ctx())).unwrap();
        let prepared = PreparedPairing::new(&pp, &two_torsion);
        assert_eq!(
            prepared.pairing(pp.generator()),
            pp.pairing(&two_torsion, pp.generator())
        );
    }

    #[test]
    fn multi_pairing_matches_product_of_individual_pairings() {
        let pp = PairingParams::insecure_toy();
        let mut r = rng();
        for k in [1usize, 2, 3, 5, 8] {
            let fixed: Vec<G1Affine> = (0..k).map(|_| pp.random_g1(&mut r)).collect();
            let qs: Vec<G1Affine> = (0..k).map(|_| pp.random_g1(&mut r)).collect();
            let prepared: Vec<PreparedPairing> =
                fixed.iter().map(|p| PreparedPairing::new(&pp, p)).collect();
            let pairs: Vec<(&PreparedPairing, &G1Affine)> =
                prepared.iter().zip(qs.iter()).collect();
            let fast = multi_pairing(&pairs).expect("non-empty batch");
            let naive = prepared
                .iter()
                .zip(qs.iter())
                .fold(pp.gt_identity(), |acc, (p, q)| acc.mul(&p.pairing(q)));
            assert_eq!(fast, naive);
            assert_eq!(fast.to_bytes(), naive.to_bytes());
        }
        // Empty batch: no context to build 1 in.
        assert!(multi_pairing(&[]).is_none());
    }

    #[test]
    fn multi_pairing_skips_degenerate_pairs() {
        let pp = PairingParams::insecure_toy();
        let mut r = rng();
        let a = pp.random_g1(&mut r);
        let b = pp.random_g1(&mut r);
        let q = pp.random_g1(&mut r);
        let prep_a = PreparedPairing::new(&pp, &a);
        let prep_b = PreparedPairing::new(&pp, &b);
        let prep_id = PreparedPairing::new(&pp, &pp.g1_identity());
        let id = pp.g1_identity();
        // Identity in either position contributes a factor 1.
        let pairs: Vec<(&PreparedPairing, &G1Affine)> =
            vec![(&prep_a, &q), (&prep_id, &q), (&prep_b, &id)];
        let fast = multi_pairing(&pairs).expect("non-empty batch");
        assert_eq!(fast.to_bytes(), prep_a.pairing(&q).to_bytes());
        // All-degenerate batch is the identity.
        let pairs: Vec<(&PreparedPairing, &G1Affine)> = vec![(&prep_id, &q), (&prep_a, &id)];
        assert!(multi_pairing(&pairs).expect("non-empty batch").is_one());
    }

    #[test]
    fn pairing_batch_matches_individual_pairings() {
        let pp = PairingParams::insecure_toy();
        let mut r = rng();
        let fixed = pp.random_g1(&mut r);
        let prepared = PreparedPairing::new(&pp, &fixed);
        let mut qs: Vec<G1Affine> = (0..6).map(|_| pp.random_g1(&mut r)).collect();
        qs.push(pp.g1_identity());
        let refs: Vec<&G1Affine> = qs.iter().collect();
        let batch = prepared.pairing_batch(&refs);
        assert_eq!(batch.len(), qs.len());
        for (got, q) in batch.iter().zip(qs.iter()) {
            assert_eq!(got.to_bytes(), prepared.pairing(q).to_bytes());
        }
        assert!(prepared.pairing_batch(&[]).is_empty());
    }

    #[test]
    fn non_subgroup_fixed_arguments_match_the_generic_loop() {
        use crate::curve::random_curve_point;
        let pp = PairingParams::insecure_toy();
        let mut r = rng();
        for _ in 0..3 {
            let fixed = random_curve_point(pp.fp_ctx(), &mut r);
            let q = pp.random_g1(&mut r);
            let prepared = PreparedPairing::new(&pp, &fixed);
            assert_eq!(prepared.pairing(&q), pp.pairing(&fixed, &q));
        }
    }
}
