//! The pairing target group `G_1` of the paper (written `Gt` here).
//!
//! `Gt` is the order-`q` subgroup of `F_{p²}^*` that the reduced Tate pairing
//! maps into.  Because `q | p + 1`, the Frobenius (= conjugation) acts as
//! inversion on this subgroup, which gives a very cheap inverse.

use crate::error::PairingError;
use crate::fp::FpCtx;
use crate::fp2::Fp2;
use crate::scalar::Scalar;
use crate::Result;
use std::sync::Arc;
use tibpre_bigint::Uint;

/// An element of the pairing target group (order-`q` subgroup of `F_{p²}^*`).
#[derive(Clone, PartialEq, Eq)]
pub struct Gt {
    value: Fp2,
}

impl Gt {
    /// Wraps a raw `F_{p²}` value *without* checking subgroup membership.
    ///
    /// Only the pairing and deserialisation-with-validation paths should call
    /// this; it is exposed crate-internally and to the scheme layers through
    /// [`Gt::from_fp2_unchecked`].
    pub fn from_fp2_unchecked(value: Fp2) -> Self {
        Gt { value }
    }

    /// The multiplicative identity.
    pub fn one(ctx: &Arc<FpCtx>) -> Self {
        Gt {
            value: Fp2::one(ctx),
        }
    }

    /// The underlying `F_{p²}` value.
    pub fn as_fp2(&self) -> &Fp2 {
        &self.value
    }

    /// Returns `true` for the identity.
    pub fn is_one(&self) -> bool {
        self.value.is_one()
    }

    /// Group operation (multiplication in `F_{p²}`).
    pub fn mul(&self, other: &Gt) -> Gt {
        Gt {
            value: self.value.mul(&other.value),
        }
    }

    /// Division: `self · other^{-1}`.
    pub fn div(&self, other: &Gt) -> Result<Gt> {
        Ok(self.mul(&other.invert()?))
    }

    /// Inversion.
    ///
    /// For genuine subgroup elements the conjugate *is* the inverse (because
    /// `p ≡ −1 (mod q)`), but to stay correct on unchecked values this method
    /// performs a real field inversion; the conjugate fast path is used only
    /// when it verifies.
    pub fn invert(&self) -> Result<Gt> {
        if self.value.is_zero() {
            return Err(PairingError::NotInvertible);
        }
        let conj = self.value.conjugate();
        if self.value.mul(&conj).is_one() {
            return Ok(Gt { value: conj });
        }
        Ok(Gt {
            value: self.value.invert()?,
        })
    }

    /// Exponentiation by an arbitrary integer.
    pub fn pow(&self, exp: &Uint) -> Gt {
        Gt {
            value: self.value.pow(exp),
        }
    }

    /// Exponentiation by a scalar in `Z_q`.
    pub fn pow_scalar(&self, exp: &Scalar) -> Gt {
        self.pow(&exp.to_uint())
    }

    /// Checks membership in the order-`q` subgroup (`self^q = 1`).
    pub fn is_in_subgroup(&self, order: &Uint) -> bool {
        !self.value.is_zero() && self.pow(order).is_one()
    }

    /// Canonical byte encoding (the encoding of the underlying `F_{p²}` value).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.value.to_bytes()
    }

    /// Decodes an element and validates subgroup membership.
    pub fn from_bytes(ctx: &Arc<FpCtx>, order: &Uint, bytes: &[u8]) -> Result<Gt> {
        let value = Fp2::from_bytes(ctx, bytes)?;
        let gt = Gt { value };
        if !gt.is_in_subgroup(order) {
            return Err(PairingError::NotInSubgroup);
        }
        Ok(gt)
    }
}

impl core::fmt::Debug for Gt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Gt({:?})", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::Fp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> Arc<FpCtx> {
        FpCtx::new(&Uint::from_u128((1u128 << 127) - 1)).unwrap()
    }

    #[test]
    fn identity_and_multiplication() {
        let c = ctx();
        let one = Gt::one(&c);
        assert!(one.is_one());
        assert_eq!(one.mul(&one), one);
        assert!(one.invert().unwrap().is_one());
        assert!(one.pow(&Uint::from_u64(1234)).is_one());
    }

    #[test]
    fn inversion_of_general_values() {
        // Even non-subgroup values must invert correctly (safe fallback path).
        let c = ctx();
        let mut r = StdRng::seed_from_u64(5);
        let raw = Fp2::random(&c, &mut r);
        let gt = Gt::from_fp2_unchecked(raw);
        let inv = gt.invert().unwrap();
        assert!(gt.mul(&inv).is_one());
    }

    #[test]
    fn zero_is_not_invertible() {
        let c = ctx();
        let zero = Gt::from_fp2_unchecked(Fp2::zero(&c));
        assert!(zero.invert().is_err());
        assert!(!zero.is_in_subgroup(&Uint::from_u64(7)));
    }

    #[test]
    fn the_order_two_torus_element_behaves() {
        // (−1, 0) is the unique order-2 element of F_{p²}^*: its own inverse
        // (via the conjugate fast path — it lies on the norm-1 torus) and a
        // member of exactly the even-order subgroups.
        let c = ctx();
        let g = Gt::from_fp2_unchecked(Fp2::new(Fp::one(&c).neg(), Fp::zero(&c)));
        assert!(!g.is_one());
        assert!(g.mul(&g).is_one());
        assert_eq!(g.invert().unwrap(), g);
        assert!(g.is_in_subgroup(&Uint::from_u64(2)));
        assert!(g.is_in_subgroup(&Uint::from_u64(8)));
        assert!(!g.is_in_subgroup(&Uint::from_u64(7)));
    }

    #[test]
    fn pow_behaves_like_repeated_multiplication() {
        let c = ctx();
        let mut r = StdRng::seed_from_u64(6);
        let g = Gt::from_fp2_unchecked(Fp2::random(&c, &mut r));
        let mut acc = Gt::one(&c);
        for k in 0u64..8 {
            assert_eq!(g.pow(&Uint::from_u64(k)), acc, "k = {k}");
            acc = acc.mul(&g);
        }
    }

    #[test]
    fn byte_round_trip_through_the_wire_codec() {
        // The unchecked decode path now lives behind the `WireDecode` impl
        // (`tibpre_wire::decode_bare`); the legacy `from_bytes_unchecked`
        // public bypass is gone.
        let c = ctx();
        let mut r = StdRng::seed_from_u64(7);
        let g = Gt::from_fp2_unchecked(Fp2::random(&c, &mut r));
        let bytes = g.to_bytes();
        use tibpre_wire::WireVersion;
        assert_eq!(
            tibpre_wire::decode_bare::<Gt>(&bytes, WireVersion::V0, &c).unwrap(),
            g
        );
        assert!(tibpre_wire::decode_bare::<Gt>(&bytes[1..], WireVersion::V0, &c).is_err());
    }

    #[test]
    fn subgroup_check_rejects_random_values() {
        // A random Fp2 element is in the tiny order-7 "subgroup" only with
        // negligible probability.
        let c = ctx();
        let mut r = StdRng::seed_from_u64(8);
        let g = Gt::from_fp2_unchecked(Fp2::random(&c, &mut r));
        assert!(!g.is_in_subgroup(&Uint::from_u64(7)));
        let bytes = g.to_bytes();
        assert!(Gt::from_bytes(&c, &Uint::from_u64(7), &bytes).is_err());
        // The identity is in every subgroup.
        assert!(Gt::one(&c).is_in_subgroup(&Uint::from_u64(7)));
        let _ = Fp::one(&c); // silence unused-import lint paths in some configs
    }
}
