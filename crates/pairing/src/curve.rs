//! The supersingular curve `E : y² = x³ + x` over `F_p` and its prime-order subgroup.
//!
//! With `p ≡ 3 (mod 4)` the curve is supersingular and has exactly `p + 1`
//! points over `F_p`.  The parameter generator picks `p = h·q − 1`, so the
//! group of rational points contains a subgroup of prime order `q`; that
//! subgroup is the pairing group `G` of the paper.
//!
//! Two representations are provided: [`G1Affine`] (the canonical, serialisable
//! form, with simple textbook addition used as the reference implementation)
//! and [`G1Projective`] (Jacobian coordinates, inversion-free, used for scalar
//! multiplication).  The test-suite cross-checks the two against each other.

use crate::error::PairingError;
use crate::fp::{Fp, FpCtx};
use crate::scalar::Scalar;
use crate::Result;
use rand::{CryptoRng, RngCore};
use std::sync::Arc;
use tibpre_bigint::Uint;

/// A point of `E(F_p)` in affine coordinates (plus the point at infinity).
#[derive(Clone, PartialEq, Eq)]
pub struct G1Affine {
    x: Fp,
    y: Fp,
    infinity: bool,
}

impl G1Affine {
    /// The point at infinity (group identity).
    pub fn identity(ctx: &Arc<FpCtx>) -> Self {
        G1Affine {
            x: Fp::zero(ctx),
            y: Fp::zero(ctx),
            infinity: true,
        }
    }

    /// Constructs a point from coordinates, verifying the curve equation.
    pub fn new(x: Fp, y: Fp) -> Result<Self> {
        let p = G1Affine {
            x,
            y,
            infinity: false,
        };
        if p.is_on_curve() {
            Ok(p)
        } else {
            Err(PairingError::NotOnCurve)
        }
    }

    /// Constructs a point without the curve check (internal fast path).
    pub(crate) fn new_unchecked(x: Fp, y: Fp) -> Self {
        G1Affine {
            x,
            y,
            infinity: false,
        }
    }

    /// The x-coordinate.  Meaningless for the identity.
    pub fn x(&self) -> &Fp {
        &self.x
    }

    /// The y-coordinate.  Meaningless for the identity.
    pub fn y(&self) -> &Fp {
        &self.y
    }

    /// Returns `true` for the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// The field context of the coordinates.
    pub fn ctx(&self) -> &Arc<FpCtx> {
        self.x.ctx()
    }

    /// Checks the curve equation `y² = x³ + x`.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let lhs = self.y.square();
        let x_cubed = self.x.square().mul(&self.x);
        let rhs = &x_cubed + &self.x;
        lhs == rhs
    }

    /// Checks membership in the order-`q` subgroup: `q·P = O`.
    pub fn is_in_subgroup(&self, q: &Uint) -> bool {
        self.mul_uint(q).is_identity()
    }

    /// Point negation.
    pub fn neg(&self) -> G1Affine {
        if self.infinity {
            return self.clone();
        }
        G1Affine {
            x: self.x.clone(),
            y: self.y.neg(),
            infinity: false,
        }
    }

    /// Affine point addition (textbook chord-and-tangent, reference implementation).
    pub fn add(&self, other: &G1Affine) -> G1Affine {
        if self.infinity {
            return other.clone();
        }
        if other.infinity {
            return self.clone();
        }
        let ctx = self.ctx();
        if self.x == other.x {
            if self.y == other.y.neg() {
                return G1Affine::identity(ctx);
            }
            return self.double();
        }
        // λ = (y2 − y1) / (x2 − x1)
        let lambda = (&other.y - &self.y).mul(&(&other.x - &self.x).invert().expect("x1 != x2"));
        let x3 = &(&lambda.square() - &self.x) - &other.x;
        let y3 = &lambda.mul(&(&self.x - &x3)) - &self.y;
        G1Affine {
            x: x3,
            y: y3,
            infinity: false,
        }
    }

    /// Affine point doubling.
    pub fn double(&self) -> G1Affine {
        if self.infinity {
            return self.clone();
        }
        let ctx = self.ctx();
        if self.y.is_zero() {
            // 2-torsion point; doubling gives the identity.
            return G1Affine::identity(ctx);
        }
        // λ = (3x² + 1) / (2y)   (the curve coefficient a is 1)
        let numerator = &self.x.square().mul_u64(3) + &Fp::one(ctx);
        let lambda = numerator.mul(&self.y.double().invert().expect("y != 0"));
        let x3 = &lambda.square() - &self.x.double();
        let y3 = &lambda.mul(&(&self.x - &x3)) - &self.y;
        G1Affine {
            x: x3,
            y: y3,
            infinity: false,
        }
    }

    /// Subtraction convenience.
    pub fn sub(&self, other: &G1Affine) -> G1Affine {
        self.add(&other.neg())
    }

    /// Scalar multiplication by an arbitrary integer (via Jacobian coordinates).
    pub fn mul_uint(&self, k: &Uint) -> G1Affine {
        G1Projective::from_affine(self).mul_uint(k).to_affine()
    }

    /// Scalar multiplication by an element of `Z_q`.
    pub fn mul_scalar(&self, k: &Scalar) -> G1Affine {
        self.mul_uint(&k.to_uint())
    }

    /// Canonical uncompressed encoding: `0x00` for the identity (1 byte) or
    /// `0x04 || x || y`.
    pub fn to_bytes(&self) -> Vec<u8> {
        if self.infinity {
            return vec![0x00];
        }
        let mut out = Vec::with_capacity(1 + 2 * self.ctx().byte_len());
        out.push(0x04);
        out.extend(self.x.to_bytes());
        out.extend(self.y.to_bytes());
        out
    }

    /// Compressed encoding: `0x00` for the identity or `0x02/0x03 || x` with
    /// the tag carrying the parity of `y`.
    pub fn to_bytes_compressed(&self) -> Vec<u8> {
        if self.infinity {
            return vec![0x00];
        }
        let mut out = Vec::with_capacity(1 + self.ctx().byte_len());
        out.push(if self.y.is_odd_repr() { 0x03 } else { 0x02 });
        out.extend(self.x.to_bytes());
        out
    }

    /// Decodes an uncompressed coordinate pair, re-validating the curve
    /// equation.  Shared by [`Self::from_bytes`] and the wire codec.
    pub(crate) fn decode_uncompressed(
        ctx: &Arc<FpCtx>,
        x_bytes: &[u8],
        y_bytes: &[u8],
    ) -> Result<G1Affine> {
        let x = Fp::from_bytes(ctx, x_bytes)?;
        let y = Fp::from_bytes(ctx, y_bytes)?;
        G1Affine::new(x, y)
    }

    /// Decompresses an x-coordinate plus a y-parity bit, re-validating the
    /// curve equation (an x with no square root on the right-hand side is
    /// rejected).  Shared by [`Self::from_bytes`] and the wire codec.
    pub(crate) fn decode_compressed(
        ctx: &Arc<FpCtx>,
        want_odd_y: bool,
        x_bytes: &[u8],
    ) -> Result<G1Affine> {
        let x = Fp::from_bytes(ctx, x_bytes)?;
        let rhs = &x.square().mul(&x) + &x;
        let mut y = rhs.sqrt().ok_or(PairingError::NotOnCurve)?;
        if y.is_odd_repr() != want_odd_y {
            y = y.neg();
        }
        G1Affine::new(x, y)
    }

    /// Decodes either encoding, re-validating the curve equation.
    pub fn from_bytes(ctx: &Arc<FpCtx>, bytes: &[u8]) -> Result<G1Affine> {
        let field_len = ctx.byte_len();
        match bytes.first() {
            Some(0x00) if bytes.len() == 1 => Ok(G1Affine::identity(ctx)),
            Some(0x04) if bytes.len() == 1 + 2 * field_len => {
                Self::decode_uncompressed(ctx, &bytes[1..1 + field_len], &bytes[1 + field_len..])
            }
            Some(tag @ (0x02 | 0x03)) if bytes.len() == 1 + field_len => {
                Self::decode_compressed(ctx, *tag == 0x03, &bytes[1..])
            }
            _ => Err(PairingError::InvalidEncoding("unknown point encoding")),
        }
    }
}

impl core::fmt::Debug for G1Affine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.infinity {
            write!(f, "G1Affine(infinity)")
        } else {
            write!(f, "G1Affine(x={:?}, y={:?})", self.x, self.y)
        }
    }
}

/// A point in Jacobian projective coordinates `(X : Y : Z)`, representing the
/// affine point `(X/Z², Y/Z³)`; the identity has `Z = 0`.
#[derive(Clone)]
pub struct G1Projective {
    x: Fp,
    y: Fp,
    z: Fp,
}

impl G1Projective {
    /// The group identity.
    pub fn identity(ctx: &Arc<FpCtx>) -> Self {
        G1Projective {
            x: Fp::one(ctx),
            y: Fp::one(ctx),
            z: Fp::zero(ctx),
        }
    }

    /// Lifts an affine point.
    pub fn from_affine(p: &G1Affine) -> Self {
        if p.is_identity() {
            return Self::identity(p.ctx());
        }
        G1Projective {
            x: p.x.clone(),
            y: p.y.clone(),
            z: Fp::one(p.ctx()),
        }
    }

    /// Returns `true` for the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// The field context.
    pub fn ctx(&self) -> &Arc<FpCtx> {
        self.x.ctx()
    }

    /// Normalises back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> G1Affine {
        if self.is_identity() {
            return G1Affine::identity(self.ctx());
        }
        let z_inv = self.z.invert().expect("non-identity has z != 0");
        let z_inv_sq = z_inv.square();
        let x = self.x.mul(&z_inv_sq);
        let y = self.y.mul(&z_inv_sq.mul(&z_inv));
        G1Affine {
            x,
            y,
            infinity: false,
        }
    }

    /// Jacobian doubling (general formula with curve coefficient `a = 1`):
    /// `S = 4XY²`, `M = 3X² + Z⁴`, `X' = M² − 2S`, `Y' = M(S − X') − 8Y⁴`, `Z' = 2YZ`.
    pub fn double(&self) -> G1Projective {
        if self.is_identity() || self.y.is_zero() {
            return Self::identity(self.ctx());
        }
        let y_sq = self.y.square();
        let s = self.x.mul(&y_sq).double().double();
        let z_sq = self.z.square();
        let m = &self.x.square().mul_u64(3) + &z_sq.square();
        let x3 = &m.square() - &s.double();
        let y3 = &m.mul(&(&s - &x3)) - &y_sq.square().double().double().double();
        let z3 = self.y.double().mul(&self.z);
        G1Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian addition.
    pub fn add(&self, other: &G1Projective) -> G1Projective {
        if self.is_identity() {
            return other.clone();
        }
        if other.is_identity() {
            return self.clone();
        }
        let z1_sq = self.z.square();
        let z2_sq = other.z.square();
        let u1 = self.x.mul(&z2_sq);
        let u2 = other.x.mul(&z1_sq);
        let s1 = self.y.mul(&z2_sq.mul(&other.z));
        let s2 = other.y.mul(&z1_sq.mul(&self.z));
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity(self.ctx());
        }
        let h = &u2 - &u1;
        let r = &s2 - &s1;
        let h_sq = h.square();
        let h_cu = h_sq.mul(&h);
        let u1_h_sq = u1.mul(&h_sq);
        let x3 = &(&r.square() - &h_cu) - &u1_h_sq.double();
        let y3 = &r.mul(&(&u1_h_sq - &x3)) - &s1.mul(&h_cu);
        let z3 = self.z.mul(&other.z).mul(&h);
        G1Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (`Z₂ = 1`), which saves the general
    /// formula's four `Z₂` multiplications: `U₂ = x₂Z₁²`, `S₂ = y₂Z₁³`,
    /// `H = U₂ − X₁`, `r = S₂ − Y₁`, `X₃ = r² − H³ − 2X₁H²`,
    /// `Y₃ = r(X₁H² − X₃) − Y₁H³`, `Z₃ = Z₁H`.
    ///
    /// This is the inner loop of the fixed-base tables in [`crate::precomp`],
    /// where every table entry is affine.
    pub fn add_affine(&self, other: &G1Affine) -> G1Projective {
        if self.is_identity() {
            return G1Projective::from_affine(other);
        }
        if other.is_identity() {
            return self.clone();
        }
        let z1_sq = self.z.square();
        let u2 = other.x().mul(&z1_sq);
        let s2 = other.y().mul(&z1_sq.mul(&self.z));
        if u2 == self.x {
            if s2 == self.y {
                return self.double();
            }
            return Self::identity(self.ctx());
        }
        let h = &u2 - &self.x;
        let r = &s2 - &self.y;
        let h_sq = h.square();
        let h_cu = h_sq.mul(&h);
        let v = self.x.mul(&h_sq);
        let x3 = &(&r.square() - &h_cu) - &v.double();
        let y3 = &r.mul(&(&v - &x3)) - &self.y.mul(&h_cu);
        let z3 = self.z.mul(&h);
        G1Projective {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication by a fixed 4-bit window over the bits of `k`:
    /// one table of the odd-and-even multiples `1·P … 15·P` up front, then
    /// four doublings plus at most one table addition per window — roughly
    /// half the additions of plain double-and-add for the scalar sizes the
    /// scheme uses.
    pub fn mul_uint(&self, k: &Uint) -> G1Projective {
        const WINDOW: usize = 4;
        const TABLE_LEN: usize = (1 << WINDOW) - 1;

        let bits = k.bits();
        if bits == 0 || self.is_identity() {
            return Self::identity(self.ctx());
        }
        if bits <= WINDOW {
            // Tiny scalars: the table would cost more than it saves.
            let mut acc = Self::identity(self.ctx());
            for i in (0..bits).rev() {
                acc = acc.double();
                if k.bit(i) {
                    acc = acc.add(self);
                }
            }
            return acc;
        }

        // table[j] = (j + 1)·P; even multiples come from a doubling, odd ones
        // from one addition.
        let mut table: Vec<G1Projective> = Vec::with_capacity(TABLE_LEN);
        table.push(self.clone());
        for j in 1..TABLE_LEN {
            let next = if (j + 1) % 2 == 0 {
                table[j.div_ceil(2) - 1].double()
            } else {
                table[j - 1].add(self)
            };
            table.push(next);
        }

        let windows = bits.div_ceil(WINDOW);
        let mut acc = Self::identity(self.ctx());
        for w in (0..windows).rev() {
            for _ in 0..WINDOW {
                acc = acc.double();
            }
            let mut idx = 0usize;
            for b in (0..WINDOW).rev() {
                let i = w * WINDOW + b;
                idx = (idx << 1) | usize::from(i < bits && k.bit(i));
            }
            if idx != 0 {
                acc = acc.add(&table[idx - 1]);
            }
        }
        acc
    }

    /// Scalar multiplication by an element of `Z_q`.
    pub fn mul_scalar(&self, k: &Scalar) -> G1Projective {
        self.mul_uint(&k.to_uint())
    }
}

impl PartialEq for G1Projective {
    fn eq(&self, other: &Self) -> bool {
        // Compare in affine coordinates to avoid the projective-class ambiguity.
        self.to_affine() == other.to_affine()
    }
}

impl Eq for G1Projective {}

impl core::fmt::Debug for G1Projective {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "G1Projective({:?})", self.to_affine())
    }
}

/// Normalises a slice of Jacobian points to affine coordinates with a
/// *single* field inversion (Montgomery's simultaneous-inversion trick on the
/// `Z` coordinates), instead of one inversion per point.
///
/// Used by the fixed-base table builder in [`crate::precomp`], where hundreds
/// of table entries are normalised at once.
pub fn batch_to_affine(points: &[G1Projective]) -> Vec<G1Affine> {
    let Some(first) = points.first() else {
        return Vec::new();
    };
    let ctx = first.ctx();
    let zs: Vec<Fp> = points
        .iter()
        .filter(|p| !p.is_identity())
        .map(|p| p.z.clone())
        .collect();
    let z_invs = Fp::batch_invert(&zs).expect("non-identity points have Z ≠ 0");
    let mut inv_iter = z_invs.into_iter();
    points
        .iter()
        .map(|p| {
            if p.is_identity() {
                return G1Affine::identity(ctx);
            }
            let z_inv = inv_iter.next().expect("one inverse per non-identity point");
            let z_inv_sq = z_inv.square();
            G1Affine::new_unchecked(p.x.mul(&z_inv_sq), p.y.mul(&z_inv_sq.mul(&z_inv)))
        })
        .collect()
}

/// Samples a uniformly random point of the full curve `E(F_p)` (not yet in the
/// prime-order subgroup) by try-and-increment on the x-coordinate.
pub fn random_curve_point<R: RngCore + CryptoRng>(ctx: &Arc<FpCtx>, rng: &mut R) -> G1Affine {
    loop {
        let x = Fp::random(ctx, rng);
        let rhs = &x.square().mul(&x) + &x;
        if let Some(y) = rhs.sqrt() {
            let y = if rng.next_u32() & 1 == 1 { y.neg() } else { y };
            if y.is_zero() && x.is_zero() {
                // (0, 0) is the 2-torsion point; skip it.
                continue;
            }
            return G1Affine::new_unchecked(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> Arc<FpCtx> {
        // p = 2^127 - 1 ≡ 3 (mod 4).  Fine for group-law tests (the pairing
        // tests use properly generated parameters).
        FpCtx::new(&Uint::from_u128((1u128 << 127) - 1)).unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn random_points_are_on_curve() {
        let c = ctx();
        let mut r = rng();
        for _ in 0..10 {
            let p = random_curve_point(&c, &mut r);
            assert!(p.is_on_curve());
        }
    }

    #[test]
    fn identity_behaviour() {
        let c = ctx();
        let mut r = rng();
        let p = random_curve_point(&c, &mut r);
        let id = G1Affine::identity(&c);
        assert!(id.is_identity());
        assert!(id.is_on_curve());
        assert_eq!(id.add(&p), p);
        assert_eq!(p.add(&id), p);
        assert_eq!(id.add(&id), id);
        assert!(p.add(&p.neg()).is_identity());
        assert_eq!(id.neg(), id);
        assert!(id.double().is_identity());
    }

    #[test]
    fn group_law_spot_checks() {
        let c = ctx();
        let mut r = rng();
        for _ in 0..10 {
            let p = random_curve_point(&c, &mut r);
            let q = random_curve_point(&c, &mut r);
            let s = random_curve_point(&c, &mut r);
            // Commutativity.
            assert_eq!(p.add(&q), q.add(&p));
            // Associativity.
            assert_eq!(p.add(&q).add(&s), p.add(&q.add(&s)));
            // Doubling consistency.
            assert_eq!(p.add(&p), p.double());
            // Closure.
            assert!(p.add(&q).is_on_curve());
        }
    }

    #[test]
    fn projective_matches_affine() {
        let c = ctx();
        let mut r = rng();
        for _ in 0..10 {
            let p = random_curve_point(&c, &mut r);
            let q = random_curve_point(&c, &mut r);
            let pp = G1Projective::from_affine(&p);
            let qq = G1Projective::from_affine(&q);
            assert_eq!(pp.add(&qq).to_affine(), p.add(&q));
            assert_eq!(pp.double().to_affine(), p.double());
            assert_eq!(pp.add(&pp).to_affine(), p.double());
            assert_eq!(pp.add(&G1Projective::identity(&c)).to_affine(), p);
            // Adding the negation gives the identity.
            let neg = G1Projective::from_affine(&p.neg());
            assert!(pp.add(&neg).is_identity());
        }
    }

    #[test]
    fn mixed_addition_matches_general_addition() {
        let c = ctx();
        let mut r = rng();
        for _ in 0..10 {
            let p = random_curve_point(&c, &mut r);
            let q = random_curve_point(&c, &mut r);
            let pp = G1Projective::from_affine(&p);
            assert_eq!(pp.add_affine(&q), pp.add(&G1Projective::from_affine(&q)));
            // Degenerate cases: doubling, inverse, and identities.
            assert_eq!(pp.add_affine(&p), pp.double());
            assert!(pp.add_affine(&p.neg()).is_identity());
            assert_eq!(pp.add_affine(&G1Affine::identity(&c)), pp);
            assert_eq!(
                G1Projective::identity(&c).add_affine(&p).to_affine(),
                p.clone()
            );
            // A non-trivial Z₁ (from a prior addition) exercises the real
            // mixed formula rather than the Z₁ = 1 shortcut.
            let shifted = pp.add(&G1Projective::from_affine(&q));
            assert_eq!(
                shifted.add_affine(&p),
                shifted.add(&G1Projective::from_affine(&p))
            );
        }
    }

    #[test]
    fn batch_normalisation_matches_individual() {
        let c = ctx();
        let mut r = rng();
        let mut points: Vec<G1Projective> = (0..7)
            .map(|_| {
                let a = random_curve_point(&c, &mut r);
                let b = random_curve_point(&c, &mut r);
                // Additions give Z ≠ 1, exercising the real normalisation.
                G1Projective::from_affine(&a).add(&G1Projective::from_affine(&b))
            })
            .collect();
        points.insert(3, G1Projective::identity(&c));
        let affine = batch_to_affine(&points);
        assert_eq!(affine.len(), points.len());
        for (p, a) in points.iter().zip(&affine) {
            assert_eq!(&p.to_affine(), a);
        }
        assert!(affine[3].is_identity());
        assert!(batch_to_affine(&[]).is_empty());
    }

    #[test]
    fn scalar_multiplication_small_multiples() {
        let c = ctx();
        let mut r = rng();
        let p = random_curve_point(&c, &mut r);
        let mut acc = G1Affine::identity(&c);
        for k in 0u64..=12 {
            assert_eq!(p.mul_uint(&Uint::from_u64(k)), acc, "k = {k}");
            acc = acc.add(&p);
        }
    }

    #[test]
    fn scalar_multiplication_distributes() {
        let c = ctx();
        let mut r = rng();
        let p = random_curve_point(&c, &mut r);
        let a = Uint::from_u64(123456789);
        let b = Uint::from_u64(987654321);
        let sum = a.checked_add(&b).unwrap();
        assert_eq!(p.mul_uint(&a).add(&p.mul_uint(&b)), p.mul_uint(&sum));
        // (a*b)P == a(bP)
        let prod = a.checked_mul(&b).unwrap();
        assert_eq!(p.mul_uint(&b).mul_uint(&a), p.mul_uint(&prod));
    }

    #[test]
    fn two_torsion_point_doubles_to_identity() {
        let c = ctx();
        // (0, 0) satisfies y² = x³ + x and is the rational 2-torsion point.
        let p = G1Affine::new(Fp::zero(&c), Fp::zero(&c)).unwrap();
        assert!(p.is_on_curve());
        assert!(p.double().is_identity());
        assert_eq!(p.add(&p), G1Affine::identity(&c));
    }

    #[test]
    fn point_construction_validates() {
        let c = ctx();
        assert!(G1Affine::new(Fp::from_u64(&c, 1), Fp::from_u64(&c, 1)).is_err());
        let mut r = rng();
        let p = random_curve_point(&c, &mut r);
        assert!(G1Affine::new(p.x().clone(), p.y().clone()).is_ok());
        assert!(G1Affine::new(p.x().clone(), &p.y().clone() + &Fp::one(&c)).is_err());
    }

    #[test]
    fn serialization_round_trips() {
        let c = ctx();
        let mut r = rng();
        let p = random_curve_point(&c, &mut r);
        // Uncompressed.
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), 1 + 2 * c.byte_len());
        assert_eq!(G1Affine::from_bytes(&c, &bytes).unwrap(), p);
        // Compressed.
        let compressed = p.to_bytes_compressed();
        assert_eq!(compressed.len(), 1 + c.byte_len());
        assert_eq!(G1Affine::from_bytes(&c, &compressed).unwrap(), p);
        // Identity.
        let id = G1Affine::identity(&c);
        assert_eq!(G1Affine::from_bytes(&c, &id.to_bytes()).unwrap(), id);
        assert_eq!(
            G1Affine::from_bytes(&c, &id.to_bytes_compressed()).unwrap(),
            id
        );
    }

    #[test]
    fn serialization_rejects_garbage() {
        let c = ctx();
        assert!(G1Affine::from_bytes(&c, &[]).is_err());
        assert!(G1Affine::from_bytes(&c, &[0x05]).is_err());
        assert!(G1Affine::from_bytes(&c, &[0x04, 1, 2, 3]).is_err());
        // A valid-length uncompressed encoding that is not on the curve.
        let mut bad = vec![0x04];
        bad.extend(Fp::from_u64(&c, 1).to_bytes());
        bad.extend(Fp::from_u64(&c, 1).to_bytes());
        assert!(G1Affine::from_bytes(&c, &bad).is_err());
        // A compressed encoding whose x has no corresponding y.
        let mut r = rng();
        loop {
            let x = Fp::random(&c, &mut r);
            let rhs = &x.square().mul(&x) + &x;
            if rhs.sqrt().is_none() {
                let mut enc = vec![0x02];
                enc.extend(x.to_bytes());
                assert!(G1Affine::from_bytes(&c, &enc).is_err());
                break;
            }
        }
    }

    #[test]
    fn mul_by_zero_and_one() {
        let c = ctx();
        let mut r = rng();
        let p = random_curve_point(&c, &mut r);
        assert!(p.mul_uint(&Uint::ZERO).is_identity());
        assert_eq!(p.mul_uint(&Uint::ONE), p);
        let id = G1Affine::identity(&c);
        assert!(id.mul_uint(&Uint::from_u64(12345)).is_identity());
    }
}
