//! The modified Tate pairing `ê(P, Q) = e(P, φ(Q))` on the supersingular curve.
//!
//! * `e` is the Tate pairing of order `q` computed with Miller's algorithm in
//!   the BKLS form: because the embedding degree is 2 and the second argument's
//!   x-coordinate `−x_Q` lies in the base field, every vertical-line factor is
//!   an element of `F_p^*` and is annihilated by the final exponentiation
//!   `(p² − 1)/q = (p − 1)·h`, so denominators are simply dropped.
//! * `φ(x, y) = (−x, i·y)` is the distortion map, which moves the second
//!   argument off the base-field subgroup and makes the pairing non-degenerate
//!   even when both inputs are the *same* point — giving the symmetric
//!   ("Type 1") pairing `ê : G × G → G_1` the paper requires.
//!
//! The Miller loop tracks the running point in **Jacobian coordinates** and
//! evaluates the doubling / addition lines directly from the projective
//! variables, so the whole loop is inversion-free: the affine formulas cost a
//! full Fermat inversion (`pow(p − 2)`, hundreds of multiplications) per step,
//! while the projective step is a dozen multiplications.  The line values are
//! only scaled by elements of `F_p^*` relative to their affine counterparts,
//! which the final exponentiation annihilates — the classic BKLS/GHS
//! denominator-elimination argument, applied once more to the projective
//! scaling factors.  An affine reference implementation is kept under
//! `#[cfg(test)]` as a cross-checking oracle.
//!
//! The functions here are the low-level building blocks; the convenient entry
//! point is [`crate::params::PairingParams::pairing`], which returns a [`crate::Gt`].

use crate::curve::G1Affine;
use crate::error::PairingError;
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::Result;
use tibpre_bigint::Uint;

/// The running Miller-loop point `T` in Jacobian coordinates: the affine point
/// is `(X/Z², Y/Z³)`, and `Z = 0` encodes the group identity.
///
/// Crate-visible so [`crate::precomp::PreparedPairing`] can replay the exact
/// same step sequence while collecting line *coefficients* instead of
/// evaluated line values.
pub(crate) struct MillerPoint {
    x: Fp,
    y: Fp,
    z: Fp,
}

impl MillerPoint {
    pub(crate) fn from_affine(p: &G1Affine) -> Self {
        MillerPoint {
            x: p.x().clone(),
            y: p.y().clone(),
            z: Fp::one(p.ctx()),
        }
    }

    pub(crate) fn identity(template: &G1Affine) -> Self {
        let ctx = template.ctx();
        MillerPoint {
            x: Fp::one(ctx),
            y: Fp::one(ctx),
            z: Fp::zero(ctx),
        }
    }

    pub(crate) fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// `true` when the running point is 2-torsion (vertical tangent).
    pub(crate) fn y_is_zero(&self) -> bool {
        self.y.is_zero()
    }

    /// Fused Jacobian doubling and tangent-line evaluation at
    /// `φ(Q) = (−x_Q, i·y_Q)`.
    ///
    /// Doubling (curve coefficient `a = 1`): `S = 4XY²`, `M = 3X² + Z⁴`,
    /// `X' = M² − 2S`, `Y' = M(S − X') − 8Y⁴`, `Z' = 2YZ`.
    ///
    /// The affine tangent at `T` evaluated at `φ(Q)`, scaled by
    /// `2YZ³ ∈ F_p^*`, is
    /// `(M·(X + x_Q·Z²) − 2Y²)  +  (Z'·Z²·y_Q)·i`,
    /// which reuses the doubling intermediates and needs no inversion.
    ///
    /// The caller must ensure `Y ≠ 0` (no 2-torsion).
    ///
    /// Lazy reduction: `M = 3X² + Z⁴` and `Y' = M(S − X') − Y²·8Y²` are
    /// each one [`Fp::sum_of_products`] — the constituent products carry
    /// once per output instead of once per multiplication.  (The line
    /// itself stays strict: `M·(X + x_Q·Z²)` is a nested product whose
    /// inner factor must be reduced anyway, so there is nothing to defer.)
    fn double_with_line(&mut self, xq: &Fp, yq: &Fp) -> Fp2 {
        debug_assert!(!self.is_identity() && !self.y.is_zero());
        let yy = self.y.square();
        let zz = self.z.square();
        let s = self.x.mul(&yy).double().double();
        let m = Fp::sum_of_products(&[
            (&self.x, &self.x),
            (&self.x, &self.x),
            (&self.x, &self.x),
            (&zz, &zz),
        ]);
        let x3 = &m.square() - &s.double();
        let s_minus_x3 = &s - &x3;
        let yy8 = yy.double().double().double();
        let neg_yy = yy.neg();
        let y3 = Fp::sum_of_products(&[(&m, &s_minus_x3), (&neg_yy, &yy8)]);
        let z3 = self.y.double().mul(&self.z);

        let two_yy = yy.double();
        let line_real = &m.mul(&(&self.x + &xq.mul(&zz))) - &two_yy;
        let line_imag = z3.mul(&zz).mul(yq);

        self.x = x3;
        self.y = y3;
        self.z = z3;
        Fp2::new(line_real, line_imag)
    }

    /// Fused mixed addition `T ← T + P` (with `P` affine) and chord-line
    /// evaluation at `φ(Q)`.
    ///
    /// Mixed Jacobian addition: `U₂ = x_P·Z²`, `S₂ = y_P·Z³`, `H = U₂ − X`,
    /// `r = S₂ − Y`, `X' = r² − H³ − 2XH²`, `Y' = r(XH² − X') − YH³`,
    /// `Z' = ZH`.
    ///
    /// The chord through `T` and `P` has slope `λ = r/(HZ) = r/Z'`; its value
    /// at `φ(Q)`, scaled by `Z' ∈ F_p^*`, is
    /// `(r·(x_Q + x_P) − Z'·y_P)  +  (Z'·y_Q)·i`.
    ///
    /// The degenerate cases fall out of the intermediates already computed
    /// (`H = 0 ⇔ x_T = x_P`, and then `r = 0 ⇔ T = P`), so the caller pays no
    /// separate normalised comparisons: they are reported instead of a line,
    /// and `T` is left untouched.
    /// Lazy reduction: `X' = r² − H·H² − 2V` and
    /// `Y' = r(V − X') − (Y·H)·H²` fold their products into one deferred
    /// reduction each (so `H³` is never materialised), and the chord value
    /// `r·(x_Q + x_P) − Z'·y_P` is a third sum-of-products.
    fn add_with_line(&mut self, p: &G1Affine, xq: &Fp, yq: &Fp) -> AddStep {
        debug_assert!(!self.is_identity());
        let zz = self.z.square();
        let u2 = p.x().mul(&zz);
        let s2 = p.y().mul(&zz.mul(&self.z));
        let h = &u2 - &self.x;
        let r = &s2 - &self.y;
        if h.is_zero() {
            return if r.is_zero() {
                AddStep::Tangent
            } else {
                AddStep::Vertical
            };
        }
        let hh = h.square();
        let v = self.x.mul(&hh);
        let neg_h = h.neg();
        let x3 = &Fp::sum_of_products(&[(&r, &r), (&neg_h, &hh)]) - &v.double();
        let v_minus_x3 = &v - &x3;
        let neg_yh = self.y.mul(&h).neg();
        let y3 = Fp::sum_of_products(&[(&r, &v_minus_x3), (&neg_yh, &hh)]);
        let z3 = self.z.mul(&h);

        let x_sum = xq + p.x();
        let neg_z3 = z3.neg();
        let line_real = Fp::sum_of_products(&[(&r, &x_sum), (&neg_z3, p.y())]);
        let line_imag = z3.mul(yq);

        self.x = x3;
        self.y = y3;
        self.z = z3;
        AddStep::Line(Box::new(Fp2::new(line_real, line_imag)))
    }

    /// Doubling step that returns the tangent line as *coefficients* in the
    /// second argument instead of an evaluated value:
    /// `ℓ(φ(Q)) = (c0 + cx·x_Q) + (cy·y_Q)·i` with
    /// `c0 = M·X − 2Y²`, `cx = M·Z²`, `cy = Z'·Z²`.
    ///
    /// The point update is identical to [`Self::double_with_line`] (the two
    /// must stay in sync; the oracle-equivalence tests enforce it) — the
    /// evaluated form is kept separate because it needs one multiplication
    /// fewer, which matters on the non-precomputed hot path.
    pub(crate) fn double_step_coeffs(&mut self) -> RawLine {
        debug_assert!(!self.is_identity() && !self.y.is_zero());
        let yy = self.y.square();
        let zz = self.z.square();
        let s = self.x.mul(&yy).double().double();
        let m = &self.x.square().mul_u64(3) + &zz.square();
        let x3 = &m.square() - &s.double();
        let y3 = &m.mul(&(&s - &x3)) - &yy.square().double().double().double();
        let z3 = self.y.double().mul(&self.z);

        let c0 = &m.mul(&self.x) - &yy.double();
        let cx = m.mul(&zz);
        let cy = z3.mul(&zz);

        self.x = x3;
        self.y = y3;
        self.z = z3;
        RawLine { c0, cx, cy }
    }

    /// Mixed-addition step returning the chord line as coefficients:
    /// `c0 = r·x_P − Z'·y_P`, `cx = r`, `cy = Z'` (same degenerate cases as
    /// [`Self::add_with_line`], reported instead of a line).
    pub(crate) fn add_step_coeffs(&mut self, p: &G1Affine) -> RawAddStep {
        debug_assert!(!self.is_identity());
        let zz = self.z.square();
        let u2 = p.x().mul(&zz);
        let s2 = p.y().mul(&zz.mul(&self.z));
        let h = &u2 - &self.x;
        let r = &s2 - &self.y;
        if h.is_zero() {
            return if r.is_zero() {
                RawAddStep::Tangent
            } else {
                RawAddStep::Vertical
            };
        }
        let hh = h.square();
        let hhh = hh.mul(&h);
        let v = self.x.mul(&hh);
        let x3 = &(&r.square() - &hhh) - &v.double();
        let y3 = &r.mul(&(&v - &x3)) - &self.y.mul(&hhh);
        let z3 = self.z.mul(&h);

        let c0 = &r.mul(p.x()) - &z3.mul(p.y());
        let cy = z3.clone();

        self.x = x3;
        self.y = y3;
        self.z = z3;
        RawAddStep::Line(Box::new(RawLine { c0, cx: r, cy }))
    }
}

/// A Miller-loop line with the second argument left symbolic:
/// `ℓ(φ(Q)) = (c0 + cx·x_Q) + (cy·y_Q)·i`.
///
/// All three coefficients depend only on the first pairing argument, which is
/// what makes fixed-argument precomputation possible.  On the non-degenerate
/// path `cy = Z'·Z²` (doubling) or `cy = Z'` (addition) is never zero, so the
/// precomputation layer can normalise the line to `cy = 1` — a division by an
/// `F_p^*` constant that the final exponentiation annihilates.
pub(crate) struct RawLine {
    pub(crate) c0: Fp,
    pub(crate) cx: Fp,
    pub(crate) cy: Fp,
}

/// Outcome of [`MillerPoint::add_step_coeffs`], mirroring [`AddStep`].
pub(crate) enum RawAddStep {
    /// Generic case: `T` was updated and the chord coefficients are returned.
    /// (Boxed like [`AddStep::Line`] — clippy's `large_enum_variant`.)
    Line(Box<RawLine>),
    /// `T = P` (caller doubles instead).  Unreachable for prime-order inputs.
    Tangent,
    /// `T = −P`: vertical chord, eliminated by the final exponentiation.
    Vertical,
}

/// Outcome of [`MillerPoint::add_with_line`].
enum AddStep {
    /// The generic case: `T` was updated and the chord line is returned.
    /// (Boxed to keep the degenerate variants from carrying the full `Fp2`
    /// footprint — clippy's `large_enum_variant`.)
    Line(Box<Fp2>),
    /// `T = P`: the chord degenerates to the tangent at `T` (the caller
    /// doubles instead).  Unreachable for prime-order inputs.
    Tangent,
    /// `T = −P`: the chord is the vertical `X − x_P ∈ F_p`, eliminated by the
    /// final exponentiation (the caller sets `T` to the identity).
    Vertical,
}

/// Miller's algorithm computing `f_{q, P}(φ(Q))` without denominators (BKLS),
/// inversion-free: the running point stays in Jacobian coordinates and every
/// line is evaluated from the projective variables.
///
/// `order` must be the prime order of the subgroup both points belong to.
/// Returns the *unreduced* pairing value — well-defined only up to `F_p^*`
/// factors (the projective scaling), which the final exponentiation kills;
/// callers almost always want [`pairing_unreduced`] composed with
/// [`final_exponentiation`] (or simply
/// [`crate::params::PairingParams::pairing`]).
pub fn miller_loop(p: &G1Affine, q_point: &G1Affine, order: &Uint) -> Fp2 {
    let ctx = p.ctx();
    if p.is_identity() || q_point.is_identity() {
        return Fp2::one(ctx);
    }
    let xq = q_point.x();
    let yq = q_point.y();

    let mut f = Fp2::one(ctx);
    let mut t = MillerPoint::from_affine(p);
    let bits = order.bits();
    debug_assert!(bits >= 2, "the group order must be a large prime");

    for i in (0..bits - 1).rev() {
        // --- Doubling step: f <- f² · l_{T,T}(φ(Q)), T <- 2T ---
        f = f.square();
        if !t.is_identity() {
            if t.y.is_zero() {
                // Vertical tangent (2-torsion): the line is X − x_T ∈ F_p,
                // eliminated by the final exponentiation.
                t = MillerPoint::identity(p);
            } else {
                let line = t.double_with_line(xq, yq);
                f = f.mul(&line);
            }
        }

        // --- Addition step (when the bit is set): f <- f · l_{T,P}(φ(Q)), T <- T + P ---
        if order.bit(i) && !t.is_identity() {
            match t.add_with_line(p, xq, yq) {
                AddStep::Line(line) => f = f.mul(&line),
                AddStep::Tangent if t.y.is_zero() => {
                    // T = P with y = 0 (2-torsion): the tangent is vertical.
                    t = MillerPoint::identity(p);
                }
                AddStep::Tangent => {
                    let line = t.double_with_line(xq, yq);
                    f = f.mul(&line);
                }
                AddStep::Vertical => t = MillerPoint::identity(p),
            }
        }
    }
    f
}

/// Alias for [`miller_loop`], emphasising that the value still needs the final
/// exponentiation before it is a well-defined pairing value.
pub fn pairing_unreduced(p: &G1Affine, q_point: &G1Affine, order: &Uint) -> Fp2 {
    miller_loop(p, q_point, order)
}

/// The final exponentiation `f ↦ f^{(p² − 1)/q}`.
///
/// Decomposed as `f^{p−1} = conj(f)·f^{−1}` (the "easy" part, using that the
/// Frobenius on `F_{p²}` is conjugation) followed by exponentiation by the
/// cofactor `h = (p + 1)/q`.
///
/// After the easy part the value lies in the norm-1 ("cyclotomic") subgroup,
/// where conjugation *is* inversion; the cofactor exponentiation therefore
/// uses a signed-digit window (wNAF), whose negative digits cost only a
/// conjugation — about a third fewer multiplications than plain
/// square-and-multiply.  This sits on every pairing's critical path, naive
/// and prepared alike.
pub fn final_exponentiation(f: &Fp2, cofactor: &Uint) -> Result<Fp2> {
    final_exponentiation_with_digits(f, &wnaf_digits(cofactor, WNAF_WINDOW))
}

/// [`final_exponentiation`] with the cofactor already recoded into wNAF
/// digits (`wnaf_digits(cofactor, WNAF_WINDOW)`).
///
/// The digits are a pure function of the (fixed) cofactor, so
/// [`crate::params::PairingParams`] recodes once and every pairing —
/// naive and prepared — reuses the cached digits.
pub(crate) fn final_exponentiation_with_digits(f: &Fp2, cofactor_digits: &[i8]) -> Result<Fp2> {
    if f.is_zero() {
        return Err(PairingError::NotInvertible);
    }
    let easy = f.conjugate().mul(&f.invert()?);
    debug_assert!(easy.norm().is_one(), "f^(p-1) must have norm 1");
    Ok(cyclotomic_pow_wnaf(&easy, cofactor_digits))
}

/// Batched [`final_exponentiation_with_digits`]: one shared field inversion
/// for the whole slice.
///
/// The easy part needs `f^{−1} = conj(f)·norm(f)^{−1}`, and the base-field
/// GCD inversion inside `norm(f)^{−1}` dominates it.  Batching computes the
/// k norms, inverts them with **one** GCD via [`Fp::batch_invert`], and
/// finishes each element as `conj(f)²·norm(f)^{−1}` — mathematically the
/// same `conj(f)·f^{−1}`, so every output is bit-identical to the
/// per-element path.  The cyclotomic cofactor exponentiation (the hard
/// part) remains per element; it is all squarings and cheap conjugations.
///
/// Fails with [`PairingError::NotInvertible`] if *any* input is zero (a
/// zero Miller value, impossible for well-formed curve inputs), matching
/// the per-element contract — see [`Fp::batch_invert`] for the
/// zero-mid-batch semantics.
pub(crate) fn final_exponentiation_batch(fs: &[Fp2], cofactor_digits: &[i8]) -> Result<Vec<Fp2>> {
    if fs.is_empty() {
        return Ok(Vec::new());
    }
    for f in fs {
        if f.is_zero() {
            return Err(PairingError::NotInvertible);
        }
    }
    let norms: Vec<Fp> = fs.iter().map(|f| f.norm()).collect();
    let inv_norms = Fp::batch_invert(&norms)?;
    Ok(fs
        .iter()
        .zip(&inv_norms)
        .map(|(f, norm_inv)| {
            let conj = f.conjugate();
            let easy = conj.square().mul_fp(norm_inv);
            debug_assert!(easy.norm().is_one(), "f^(p-1) must have norm 1");
            cyclotomic_pow_wnaf(&easy, cofactor_digits)
        })
        .collect())
}

/// Width of the signed-digit window used for the cofactor exponentiation.
pub(crate) const WNAF_WINDOW: u32 = 4;

/// Exponentiation of a *norm-1* element by the exponent recoded as
/// width-[`WNAF_WINDOW`] wNAF digits.  Negative digits multiply by the
/// conjugate of a table entry, which is the inverse for norm-1 inputs — so
/// the whole exponentiation needs no field inversion and roughly `bits/5`
/// multiplies on top of the unavoidable squarings.
///
/// Produces exactly `base^exp` (the algorithm only re-associates the
/// product), so callers may treat it as a drop-in for [`Fp2::pow`].
fn cyclotomic_pow_wnaf(base: &Fp2, digits: &[i8]) -> Fp2 {
    // Odd powers base^1, base^3, …, base^(2^{w−1} − 1): the full wNAF digit
    // range.
    let base_sq = base.square();
    let mut odd_powers = Vec::with_capacity(1 << (WNAF_WINDOW - 2));
    odd_powers.push(base.clone());
    for i in 1..(1usize << (WNAF_WINDOW - 2)) {
        odd_powers.push(odd_powers[i - 1].mul(&base_sq));
    }
    let mut acc = Fp2::one(base.ctx());
    for &digit in digits.iter().rev() {
        acc = acc.square();
        if digit > 0 {
            acc = acc.mul(&odd_powers[digit.unsigned_abs() as usize / 2]);
        } else if digit < 0 {
            acc = acc.mul(&odd_powers[digit.unsigned_abs() as usize / 2].conjugate());
        }
    }
    acc
}

/// Width-`window` non-adjacent-form recoding: returns digits (least
/// significant first) in `{0, ±1, ±3, …, ±(2^{window−1} − 1)}` such that
/// `exp = Σ digits[i]·2^i`, with every non-zero digit odd and non-zero
/// digits at least `window − 1` positions apart.
///
/// `window = 2` gives the plain NAF (digits `±1`) used by the prepared
/// Miller loop's addition-subtraction chain; `window = 4` serves the
/// cofactor exponentiation.
pub(crate) fn wnaf_digits(exp: &Uint, window: u32) -> Vec<i8> {
    debug_assert!((2..=7).contains(&window));
    let mut digits = Vec::with_capacity(exp.bits() + 1);
    let mut e = *exp;
    let full = 1i16 << window;
    while !e.is_zero() {
        if e.is_odd() {
            // Centred remainder mod 2^window in (−2^{window−1}, 2^{window−1}].
            let rem = (e.limbs()[0] & ((1 << window) - 1)) as i16;
            let digit = if rem > full / 2 { rem - full } else { rem };
            digits.push(digit as i8);
            if digit < 0 {
                // e -= digit  (digit negative: add its magnitude).
                let (sum, _) = e.overflowing_add_u64(digit.unsigned_abs() as u64);
                e = sum;
            } else {
                e = e.wrapping_sub(&Uint::from_u64(digit as u64));
            }
        } else {
            digits.push(0);
        }
        e = e.shr1();
    }
    digits
}

/// Full reduced pairing `ê(P, Q) = f_{q,P}(φ(Q))^{(p²−1)/q}` as a raw `F_{p²}` value.
///
/// Prefer [`crate::params::PairingParams::pairing`], which wraps the result in
/// the type-safe [`crate::Gt`].
pub fn pairing(p: &G1Affine, q_point: &G1Affine, order: &Uint, cofactor: &Uint) -> Result<Fp2> {
    let unreduced = miller_loop(p, q_point, order);
    final_exponentiation(&unreduced, cofactor)
}

/// The original affine-coordinate Miller loop, retained as a reference oracle
/// for the regression tests: one field inversion per doubling/addition step.
///
/// Its unreduced output differs from [`miller_loop`]'s by `F_p^*` factors, so
/// the two agree exactly *after* [`final_exponentiation`].
#[cfg(test)]
pub(crate) fn miller_loop_affine(p: &G1Affine, q_point: &G1Affine, order: &Uint) -> Fp2 {
    use crate::fp::FpCtx;
    use std::sync::Arc;

    /// Evaluates the (doubling or addition) line through `(x_0, y_0)` with
    /// slope `λ` at the distorted second argument `φ(Q) = (−x_Q, i·y_Q)`:
    /// `(λ(x_Q + x_0) − y_0) + y_Q·i`.
    fn line_at_distorted_q(lambda: &Fp, x0: &Fp, y0: &Fp, xq: &Fp, yq: &Fp) -> Fp2 {
        let real = &lambda.mul(&(xq + x0)) - y0;
        Fp2::new(real, yq.clone())
    }

    let ctx: &Arc<FpCtx> = p.ctx();
    if p.is_identity() || q_point.is_identity() {
        return Fp2::one(ctx);
    }
    let xq = q_point.x();
    let yq = q_point.y();
    let one = Fp::one(ctx);

    let mut f = Fp2::one(ctx);
    let mut t = p.clone();
    let bits = order.bits();

    for i in (0..bits - 1).rev() {
        f = f.square();
        if !t.is_identity() {
            if t.y().is_zero() {
                t = G1Affine::identity(ctx);
            } else {
                let lambda = (&t.x().square().mul_u64(3) + &one)
                    .mul(&t.y().double().invert().expect("y ≠ 0 checked above"));
                let line = line_at_distorted_q(&lambda, t.x(), t.y(), xq, yq);
                f = f.mul(&line);
                t = t.double();
            }
        }

        if order.bit(i) && !t.is_identity() {
            if t.x() == p.x() {
                if t.y() == &p.y().neg() {
                    t = G1Affine::identity(ctx);
                } else {
                    let lambda = (&t.x().square().mul_u64(3) + &one).mul(
                        &t.y()
                            .double()
                            .invert()
                            .expect("y ≠ 0 for T = P of odd order"),
                    );
                    let line = line_at_distorted_q(&lambda, t.x(), t.y(), xq, yq);
                    f = f.mul(&line);
                    t = t.double();
                }
            } else {
                let lambda = (t.y() - p.y())
                    .mul(&(t.x() - p.x()).invert().expect("x_T ≠ x_P checked above"));
                let line = line_at_distorted_q(&lambda, p.x(), p.y(), xq, yq);
                f = f.mul(&line);
                t = t.add(p);
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    // The meaningful pairing tests (bilinearity, non-degeneracy, symmetry)
    // need properly generated parameters and therefore live in
    // `params.rs` and in the crate-level integration tests, where a cached
    // toy parameter set is available.  Here we exercise degenerate inputs and
    // cross-check the projective Miller loop against the affine oracle.
    use super::*;
    use crate::fp::FpCtx;
    use crate::params::PairingParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn ctx() -> Arc<FpCtx> {
        FpCtx::new(&Uint::from_u128((1u128 << 127) - 1)).unwrap()
    }

    #[test]
    fn pairing_with_identity_is_one() {
        let c = ctx();
        let id = G1Affine::identity(&c);
        let order = Uint::from_u64(1_000_003);
        let f = miller_loop(&id, &id, &order);
        assert!(f.is_one());
    }

    #[test]
    fn final_exponentiation_rejects_zero() {
        let c = ctx();
        let zero = Fp2::zero(&c);
        assert!(final_exponentiation(&zero, &Uint::from_u64(12)).is_err());
    }

    #[test]
    fn final_exponentiation_of_one_is_one() {
        let c = ctx();
        let one = Fp2::one(&c);
        let out = final_exponentiation(&one, &Uint::from_u64(123456)).unwrap();
        assert!(out.is_one());
    }

    /// The batched easy part (one shared GCD inversion) must be
    /// bit-identical to the per-element final exponentiation.
    #[test]
    fn batched_final_exponentiation_matches_per_element() {
        let pp = PairingParams::insecure_toy();
        let mut rng = StdRng::seed_from_u64(0x6B17);
        let digits = wnaf_digits(pp.cofactor(), WNAF_WINDOW);
        let fs: Vec<Fp2> = (0..7)
            .map(|_| {
                let a = pp.random_g1(&mut rng);
                let b = pp.random_g1(&mut rng);
                miller_loop(&a, &b, pp.q())
            })
            .collect();
        let batched = final_exponentiation_batch(&fs, &digits).unwrap();
        assert_eq!(batched.len(), fs.len());
        for (f, out) in fs.iter().zip(&batched) {
            let individual = final_exponentiation_with_digits(f, &digits).unwrap();
            assert_eq!(out.to_bytes(), individual.to_bytes());
        }
        // Empty batch and zero rejection.
        assert!(final_exponentiation_batch(&[], &digits).unwrap().is_empty());
        let with_zero = vec![fs[0].clone(), Fp2::zero(pp.fp_ctx())];
        assert!(final_exponentiation_batch(&with_zero, &digits).is_err());
    }

    /// The signed-digit cyclotomic exponentiation must agree with plain
    /// square-and-multiply on norm-1 bases for arbitrary exponents.
    #[test]
    fn cyclotomic_wnaf_pow_matches_plain_pow() {
        let c = ctx();
        let mut rng = StdRng::seed_from_u64(0x77AF);
        for _ in 0..5 {
            let f = Fp2::random(&c, &mut rng);
            if f.is_zero() {
                continue;
            }
            // conj(f)/f always has norm 1.
            let base = f.conjugate().mul(&f.invert().unwrap());
            assert!(base.norm().is_one());
            for exp in [
                Uint::ZERO,
                Uint::ONE,
                Uint::from_u64(2),
                Uint::from_u64(0xDEAD_BEEF),
                Uint::from_u128(0x0123_4567_89AB_CDEF_0123_4567_89AB_CDEFu128),
            ] {
                assert_eq!(
                    cyclotomic_pow_wnaf(&base, &wnaf_digits(&exp, WNAF_WINDOW)),
                    base.pow(&exp)
                );
            }
        }
    }

    /// Every wNAF digit sequence must re-encode the original exponent with
    /// odd digits bounded by the window.
    #[test]
    fn wnaf_recoding_is_faithful() {
        for window in [2u32, 4] {
            for exp in [0u64, 1, 2, 15, 16, 0xF0F0, 0xDEAD_BEEF_CAFE_F00D] {
                let digits = wnaf_digits(&Uint::from_u64(exp), window);
                let mut acc: i128 = 0;
                for (i, &d) in digits.iter().enumerate() {
                    assert!(d == 0 || (d % 2 != 0 && d.unsigned_abs() < 1 << (window - 1)));
                    acc += i128::from(d) << i;
                }
                assert_eq!(
                    acc,
                    i128::from(exp),
                    "digits must re-encode {exp} (w={window})"
                );
            }
        }
    }

    /// Regression oracle: the inversion-free projective Miller loop and the
    /// original affine loop produce the *same reduced pairing* for random
    /// inputs on the toy parameter set (their unreduced values differ by the
    /// projective `F_p^*` scaling, which the final exponentiation kills).
    #[test]
    fn projective_miller_loop_matches_affine_oracle() {
        let pp = PairingParams::insecure_toy();
        let mut rng = StdRng::seed_from_u64(0x4A43);
        for _ in 0..5 {
            let a = pp.random_g1(&mut rng);
            let b = pp.random_g1(&mut rng);
            let projective =
                final_exponentiation(&miller_loop(&a, &b, pp.q()), pp.cofactor()).unwrap();
            let affine =
                final_exponentiation(&miller_loop_affine(&a, &b, pp.q()), pp.cofactor()).unwrap();
            assert_eq!(projective, affine);
            assert!(!projective.is_one(), "pairing must stay non-degenerate");
        }
        // Same-point input (the distortion map keeps ê(P, P) ≠ 1).
        let g = pp.generator();
        let projective = final_exponentiation(&miller_loop(g, g, pp.q()), pp.cofactor()).unwrap();
        let affine =
            final_exponentiation(&miller_loop_affine(g, g, pp.q()), pp.cofactor()).unwrap();
        assert_eq!(projective, affine);
    }

    /// The projective loop must also agree on inputs *outside* the prime-order
    /// subgroup, where the 2-torsion / T = ±P special cases can actually fire.
    #[test]
    fn projective_matches_affine_on_non_subgroup_inputs() {
        use crate::curve::random_curve_point;

        let pp = PairingParams::insecure_toy();
        let mut rng = StdRng::seed_from_u64(0x4A44);
        for _ in 0..3 {
            let a = random_curve_point(pp.fp_ctx(), &mut rng);
            let b = random_curve_point(pp.fp_ctx(), &mut rng);
            // A composite "order" exercises the bit pattern; the result is not
            // a well-defined pairing but both loops must walk the same path.
            let fake_order = Uint::from_u64(0xDEAD_BEEF_CAFE);
            let projective =
                final_exponentiation(&miller_loop(&a, &b, &fake_order), pp.cofactor()).unwrap();
            let affine =
                final_exponentiation(&miller_loop_affine(&a, &b, &fake_order), pp.cofactor())
                    .unwrap();
            assert_eq!(projective, affine);
        }
    }

    /// The 2-torsion point (0, 0) drives the vertical-tangent branch.
    #[test]
    fn two_torsion_input_agrees_with_oracle() {
        let pp = PairingParams::insecure_toy();
        let two_torsion = G1Affine::new(Fp::zero(pp.fp_ctx()), Fp::zero(pp.fp_ctx())).unwrap();
        let g = pp.generator();
        let projective =
            final_exponentiation(&miller_loop(&two_torsion, g, pp.q()), pp.cofactor()).unwrap();
        let affine =
            final_exponentiation(&miller_loop_affine(&two_torsion, g, pp.q()), pp.cofactor())
                .unwrap();
        assert_eq!(projective, affine);
    }
}
