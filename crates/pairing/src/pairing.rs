//! The modified Tate pairing `ê(P, Q) = e(P, φ(Q))` on the supersingular curve.
//!
//! * `e` is the Tate pairing of order `q` computed with Miller's algorithm in
//!   the BKLS form: because the embedding degree is 2 and the second argument's
//!   x-coordinate `−x_Q` lies in the base field, every vertical-line factor is
//!   an element of `F_p^*` and is annihilated by the final exponentiation
//!   `(p² − 1)/q = (p − 1)·h`, so denominators are simply dropped.
//! * `φ(x, y) = (−x, i·y)` is the distortion map, which moves the second
//!   argument off the base-field subgroup and makes the pairing non-degenerate
//!   even when both inputs are the *same* point — giving the symmetric
//!   ("Type 1") pairing `ê : G × G → G_1` the paper requires.
//!
//! The functions here are the low-level building blocks; the convenient entry
//! point is [`crate::params::PairingParams::pairing`], which returns a [`crate::Gt`].

use crate::curve::G1Affine;
use crate::error::PairingError;
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::Result;
use tibpre_bigint::Uint;

/// Evaluates the (doubling or addition) line through the current Miller point
/// at the distorted second argument `φ(Q) = (−x_Q, i·y_Q)`.
///
/// For a line `l(X, Y) = Y − y_0 − λ(X − x_0)` through `(x_0, y_0)` the value
/// at `φ(Q)` is `(λ(x_Q + x_0) − y_0) + y_Q·i`.
fn line_at_distorted_q(lambda: &Fp, x0: &Fp, y0: &Fp, xq: &Fp, yq: &Fp) -> Fp2 {
    let real = &lambda.mul(&(xq + x0)) - y0;
    Fp2::new(real, yq.clone())
}

/// Miller's algorithm computing `f_{q, P}(φ(Q))` without denominators (BKLS).
///
/// `order` must be the prime order of the subgroup both points belong to.
/// Returns the *unreduced* pairing value; callers almost always want
/// [`pairing_unreduced`] composed with [`final_exponentiation`] (or simply
/// [`crate::params::PairingParams::pairing`]).
pub fn miller_loop(p: &G1Affine, q_point: &G1Affine, order: &Uint) -> Fp2 {
    let ctx = p.ctx();
    if p.is_identity() || q_point.is_identity() {
        return Fp2::one(ctx);
    }
    let xq = q_point.x();
    let yq = q_point.y();
    let one = Fp::one(ctx);

    let mut f = Fp2::one(ctx);
    let mut t = p.clone();
    let bits = order.bits();
    debug_assert!(bits >= 2, "the group order must be a large prime");

    for i in (0..bits - 1).rev() {
        // --- Doubling step: f <- f² · l_{T,T}(φ(Q)), T <- 2T ---
        f = f.square();
        if !t.is_identity() {
            if t.y().is_zero() {
                // Vertical tangent (2-torsion): the line is X − x_T ∈ F_p,
                // eliminated by the final exponentiation.
                t = G1Affine::identity(ctx);
            } else {
                let lambda = (&t.x().square().mul_u64(3) + &one)
                    .mul(&t.y().double().invert().expect("y ≠ 0 checked above"));
                let line = line_at_distorted_q(&lambda, t.x(), t.y(), xq, yq);
                f = f.mul(&line);
                t = t.double();
            }
        }

        // --- Addition step (when the bit is set): f <- f · l_{T,P}(φ(Q)), T <- T + P ---
        if order.bit(i) && !t.is_identity() {
            if t.x() == p.x() {
                if t.y() == &p.y().neg() {
                    // T = −P: vertical line, eliminated.
                    t = G1Affine::identity(ctx);
                } else {
                    // T = P: tangent line.  (Unreachable for prime-order inputs
                    // but handled for robustness.)
                    let lambda = (&t.x().square().mul_u64(3) + &one)
                        .mul(&t.y().double().invert().expect("y ≠ 0 for T = P of odd order"));
                    let line = line_at_distorted_q(&lambda, t.x(), t.y(), xq, yq);
                    f = f.mul(&line);
                    t = t.double();
                }
            } else {
                let lambda = (t.y() - p.y())
                    .mul(&(t.x() - p.x()).invert().expect("x_T ≠ x_P checked above"));
                let line = line_at_distorted_q(&lambda, p.x(), p.y(), xq, yq);
                f = f.mul(&line);
                t = t.add(p);
            }
        }
    }
    f
}

/// Alias for [`miller_loop`], emphasising that the value still needs the final
/// exponentiation before it is a well-defined pairing value.
pub fn pairing_unreduced(p: &G1Affine, q_point: &G1Affine, order: &Uint) -> Fp2 {
    miller_loop(p, q_point, order)
}

/// The final exponentiation `f ↦ f^{(p² − 1)/q}`.
///
/// Decomposed as `f^{p−1} = conj(f)·f^{−1}` (the "easy" part, using that the
/// Frobenius on `F_{p²}` is conjugation) followed by exponentiation by the
/// cofactor `h = (p + 1)/q`.
pub fn final_exponentiation(f: &Fp2, cofactor: &Uint) -> Result<Fp2> {
    if f.is_zero() {
        return Err(PairingError::NotInvertible);
    }
    let easy = f.conjugate().mul(&f.invert()?);
    Ok(easy.pow(cofactor))
}

/// Full reduced pairing `ê(P, Q) = f_{q,P}(φ(Q))^{(p²−1)/q}` as a raw `F_{p²}` value.
///
/// Prefer [`crate::params::PairingParams::pairing`], which wraps the result in
/// the type-safe [`crate::Gt`].
pub fn pairing(p: &G1Affine, q_point: &G1Affine, order: &Uint, cofactor: &Uint) -> Result<Fp2> {
    let unreduced = miller_loop(p, q_point, order);
    final_exponentiation(&unreduced, cofactor)
}

#[cfg(test)]
mod tests {
    // The meaningful pairing tests (bilinearity, non-degeneracy, symmetry)
    // need properly generated parameters and therefore live in
    // `params.rs` and in the crate-level integration tests, where a cached
    // toy parameter set is available.  Here we only exercise degenerate inputs.
    use super::*;
    use crate::fp::FpCtx;
    use std::sync::Arc;

    fn ctx() -> Arc<FpCtx> {
        FpCtx::new(&Uint::from_u128((1u128 << 127) - 1)).unwrap()
    }

    #[test]
    fn pairing_with_identity_is_one() {
        let c = ctx();
        let id = G1Affine::identity(&c);
        let order = Uint::from_u64(1_000_003);
        let f = miller_loop(&id, &id, &order);
        assert!(f.is_one());
    }

    #[test]
    fn final_exponentiation_rejects_zero() {
        let c = ctx();
        let zero = Fp2::zero(&c);
        assert!(final_exponentiation(&zero, &Uint::from_u64(12)).is_err());
    }

    #[test]
    fn final_exponentiation_of_one_is_one() {
        let c = ctx();
        let one = Fp2::one(&c);
        let out = final_exponentiation(&one, &Uint::from_u64(123456)).unwrap();
        assert!(out.is_one());
    }
}
