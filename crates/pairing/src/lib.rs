//! Symmetric ("Type A") pairing substrate for the TIB-PRE workspace.
//!
//! The scheme of Ibraimi et al. is stated over two multiplicative groups `G`
//! and `G1` of prime order with an efficiently computable bilinear map
//! `ê : G × G → G1`.  The standard instantiation of that abstraction — and the
//! one the original Boneh–Franklin paper uses — is a supersingular elliptic
//! curve with a distortion map, which is what this crate builds from scratch:
//!
//! * **Field tower** — [`Fp`] (prime field, Montgomery arithmetic on top of
//!   `tibpre-bigint`) and [`Fp2`] = `F_p[i]/(i² + 1)`, which requires the field
//!   prime to satisfy `p ≡ 3 (mod 4)`.
//! * **Curve** — the supersingular curve `E : y² = x³ + x` over `F_p`, which
//!   has exactly `p + 1` points.  Parameters are generated so that
//!   `p + 1 = h·q` for a large prime `q`; the order-`q` subgroup is the
//!   pairing group `G` ([`G1Affine`] / [`G1Projective`]).
//! * **Distortion map** — `φ(x, y) = (−x, i·y)` maps `E(F_p)` into
//!   `E(F_{p²}) \ E(F_p)`, making the modified Tate pairing
//!   `ê(P, Q) = e(P, φ(Q))` non-degenerate on `G × G` (a "Type 1" /
//!   symmetric pairing, exactly the object the paper works with).
//! * **Pairing** — Miller's algorithm in the BKLS form (denominator
//!   elimination thanks to the even embedding degree) followed by the final
//!   exponentiation `(p² − 1)/q`; the result lives in the order-`q`
//!   subgroup [`Gt`] of `F_{p²}^*`.
//! * **Hashing** — `MapToPoint`-style hash-to-curve and hash-to-scalar oracles
//!   in [`hash`], used by the IBE and PRE layers for `H1` and `H2`.
//! * **Parameters** — [`PairingParams`] generation for several security
//!   levels, with process-wide cached instances for tests and benches.
//! * **Precomputation** — [`precomp`] provides fixed-base multiplication
//!   tables ([`G1Precomp`]) and fixed-argument prepared pairings
//!   ([`PreparedPairing`]); the parameter set caches both for `g`, and the
//!   scheme layers cache them for `pk`, private keys, and re-encryption keys.
//!
//! The scheme layers treat this crate the way they would treat `arkworks` or
//! `pbc`: as the group-and-pairing provider.  See `DESIGN.md` for why this
//! substitution is faithful to the paper.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod curve;
pub mod error;
pub mod fp;
pub mod fp2;
pub mod gt;
pub mod hash;
pub mod pairing;
pub mod params;
pub mod precomp;
pub mod scalar;
pub mod wire;

pub use curve::{G1Affine, G1Projective};
pub use error::PairingError;
pub use fp::{Fp, FpCtx};
pub use fp2::Fp2;
pub use gt::Gt;
pub use pairing::{pairing, pairing_unreduced};
pub use params::{crypto_caches_enabled, set_crypto_caches_enabled, PairingParams, SecurityLevel};
pub use precomp::{multi_pairing, G1Precomp, PreparedPairing};
pub use scalar::{Scalar, ScalarCtx};
pub use wire::DecodeCtx;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, PairingError>;
