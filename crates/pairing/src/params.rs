//! Pairing parameter sets ("Type A" curves) and their generation.
//!
//! A parameter set fixes the field prime `p = h·q − 1` (with `p ≡ 3 (mod 4)`),
//! the prime group order `q`, the cofactor `h`, a generator `g` of the
//! order-`q` subgroup of `E(F_p) : y² = x³ + x`, and the derived generator
//! `ê(g, g)` of the target group.  The delegator's and delegatee's KGCs in the
//! paper *share* these public parameters while holding independent master
//! keys, which is exactly how the IBE / PRE layers use this type.

use crate::curve::{random_curve_point, G1Affine};
use crate::error::PairingError;
use crate::fp::FpCtx;
use crate::fp2::Fp2;
use crate::gt::Gt;
use crate::hash::{hash_to_curve, hash_to_scalar};
use crate::pairing::{
    final_exponentiation, final_exponentiation_batch, final_exponentiation_with_digits,
    miller_loop, wnaf_digits, WNAF_WINDOW,
};
use crate::precomp::{G1Precomp, PreparedPairing};
use crate::scalar::{Scalar, ScalarCtx};
use crate::Result;
use rand::rngs::StdRng;
use rand::{CryptoRng, RngCore, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use tibpre_bigint::prime::{generate_cofactor_prime, generate_prime};
use tibpre_bigint::Uint;

/// Security levels supported by the parameter generator.
///
/// The bit sizes follow the usual guidance for pairing-based systems built on
/// supersingular curves with embedding degree 2 (the discrete log in `F_{p²}`
/// is the limiting factor, so `p` must be large).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityLevel {
    /// Tiny parameters for unit tests only.  **Provides no security.**
    Toy,
    /// Legacy ~80-bit security: 160-bit group order, 512-bit field prime.
    Low80,
    /// ~112-bit security: 224-bit group order, 1024-bit field prime.
    Medium112,
    /// ~128-bit security: 256-bit group order, 1536-bit field prime.
    High128,
}

impl SecurityLevel {
    /// Bit length of the prime group order `q`.
    pub fn q_bits(self) -> usize {
        match self {
            SecurityLevel::Toy => 64,
            SecurityLevel::Low80 => 160,
            SecurityLevel::Medium112 => 224,
            SecurityLevel::High128 => 256,
        }
    }

    /// Bit length of the field prime `p`.
    pub fn p_bits(self) -> usize {
        match self {
            SecurityLevel::Toy => 192,
            SecurityLevel::Low80 => 512,
            SecurityLevel::Medium112 => 1024,
            SecurityLevel::High128 => 1536,
        }
    }

    /// A short human-readable label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            SecurityLevel::Toy => "toy(64/192)",
            SecurityLevel::Low80 => "80-bit(160/512)",
            SecurityLevel::Medium112 => "112-bit(224/1024)",
            SecurityLevel::High128 => "128-bit(256/1536)",
        }
    }

    /// All levels, in increasing strength order.
    pub fn all() -> [SecurityLevel; 4] {
        [
            SecurityLevel::Toy,
            SecurityLevel::Low80,
            SecurityLevel::Medium112,
            SecurityLevel::High128,
        ]
    }
}

/// A complete symmetric-pairing parameter set.
#[derive(Debug)]
pub struct PairingParams {
    level: SecurityLevel,
    p: Uint,
    q: Uint,
    cofactor: Uint,
    fp_ctx: Arc<FpCtx>,
    scalar_ctx: Arc<ScalarCtx>,
    generator: G1Affine,
    gt_generator: Gt,
    /// Fixed-base table for `g`, built lazily on first use and shared by
    /// every holder of these parameters.
    generator_precomp: OnceLock<Arc<G1Precomp>>,
    /// Prepared Miller loop for `g`, built lazily on first use.
    prepared_generator: OnceLock<Arc<PreparedPairing>>,
    /// The cofactor recoded into wNAF digits for the final exponentiation —
    /// fixed per parameter set, recoded once.
    cofactor_digits: OnceLock<Arc<Vec<i8>>>,
    /// Canonical encodings of `G1` points already proven to lie in the
    /// prime-order subgroup.  The subgroup check (`q·P = O`) costs a full
    /// scalar multiplication, and real traffic re-presents the same few hot
    /// points over and over (a record's `c1` on every disclosure, a key's
    /// `encrypted_x` header in every bundle), so the wire boundary memoises
    /// *successful* checks by their exact canonical bytes.  Identical bytes
    /// decode to the identical point, so a hit can never admit a point a
    /// fresh check would reject; failures are never inserted.  Capped and
    /// cleared when full, so an adversary feeding distinct valid points can
    /// waste the memo but not grow it.
    g1_validated: Mutex<HashSet<Box<[u8]>>>,
}

impl PairingParams {
    /// Generates a fresh parameter set at the given security level.
    pub fn generate<R: RngCore + CryptoRng>(
        level: SecurityLevel,
        rng: &mut R,
    ) -> Result<Arc<Self>> {
        Self::generate_custom(level, level.q_bits(), level.p_bits(), rng)
    }

    /// Generates a parameter set with custom bit sizes (exposed for tests and
    /// for the parameter-sweep benchmarks).
    pub fn generate_custom<R: RngCore + CryptoRng>(
        level: SecurityLevel,
        q_bits: usize,
        p_bits: usize,
        rng: &mut R,
    ) -> Result<Arc<Self>> {
        // Group order q, then field prime p = h·q − 1 ≡ 3 (mod 4).
        let q = generate_prime(q_bits, rng)
            .map_err(|_| PairingError::ParameterGeneration("group-order prime search failed"))?;
        let (p, cofactor) = generate_cofactor_prime(&q, p_bits, rng)
            .map_err(|_| PairingError::ParameterGeneration("field prime search failed"))?;
        let fp_ctx = FpCtx::new(&p)?;
        let scalar_ctx = ScalarCtx::new(&q)?;

        // Generator of the order-q subgroup: random curve point times the cofactor.
        let generator = loop {
            let candidate = random_curve_point(&fp_ctx, rng).mul_uint(&cofactor);
            if !candidate.is_identity() {
                break candidate;
            }
        };
        debug_assert!(generator.is_in_subgroup(&q));

        // Target-group generator ê(g, g); non-degeneracy of the distortion-map
        // pairing guarantees it is not 1 — checked anyway.
        let unreduced = miller_loop(&generator, &generator, &q);
        let gt_generator = Gt::from_fp2_unchecked(final_exponentiation(&unreduced, &cofactor)?);
        if gt_generator.is_one() {
            return Err(PairingError::ParameterGeneration(
                "degenerate pairing for the chosen generator",
            ));
        }

        Ok(Arc::new(PairingParams {
            level,
            p,
            q,
            cofactor,
            fp_ctx,
            scalar_ctx,
            generator,
            gt_generator,
            generator_precomp: OnceLock::new(),
            prepared_generator: OnceLock::new(),
            cofactor_digits: OnceLock::new(),
            g1_validated: Mutex::new(HashSet::new()),
        }))
    }

    /// A process-wide cached parameter set for the given level.
    ///
    /// Generation uses a fixed seed so test runs and benchmark tables are
    /// reproducible; real deployments must call [`PairingParams::generate`]
    /// with a fresh RNG instead.
    pub fn cached(level: SecurityLevel) -> Arc<Self> {
        static TOY: OnceLock<Arc<PairingParams>> = OnceLock::new();
        static LOW80: OnceLock<Arc<PairingParams>> = OnceLock::new();
        static MEDIUM112: OnceLock<Arc<PairingParams>> = OnceLock::new();
        static HIGH128: OnceLock<Arc<PairingParams>> = OnceLock::new();
        let (cell, seed) = match level {
            SecurityLevel::Toy => (&TOY, 0x7134_7079_u64),
            SecurityLevel::Low80 => (&LOW80, 0x8071_6272_u64),
            SecurityLevel::Medium112 => (&MEDIUM112, 0x1127_1193_u64),
            SecurityLevel::High128 => (&HIGH128, 0x1287_6553_u64),
        };
        Arc::clone(cell.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            PairingParams::generate(level, &mut rng)
                .expect("deterministic parameter generation must succeed")
        }))
    }

    /// Cached tiny parameters for unit tests.  **Provides no security.**
    pub fn insecure_toy() -> Arc<Self> {
        Self::cached(SecurityLevel::Toy)
    }

    /// Cached parameters at the paper-era default (~80-bit) level.
    pub fn default_80() -> Arc<Self> {
        Self::cached(SecurityLevel::Low80)
    }

    /// The security level this set was generated for.
    pub fn level(&self) -> SecurityLevel {
        self.level
    }

    /// The field prime `p`.
    pub fn p(&self) -> &Uint {
        &self.p
    }

    /// The prime group order `q` (the paper's group order, written `p` there).
    pub fn q(&self) -> &Uint {
        &self.q
    }

    /// Whether a `G1` point with this exact canonical encoding has already
    /// passed the subgroup check.  See the `g1_validated` field docs.
    /// Always misses while [`crypto_caches_enabled`] is off.
    pub fn g1_subgroup_memo_contains(&self, encoded: &[u8]) -> bool {
        crypto_caches_enabled()
            && self
                .g1_validated
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .contains(encoded)
    }

    /// Records a canonical encoding that passed the subgroup check.  The memo
    /// is bounded: when full it is cleared rather than grown, trading hit
    /// rate for a hard memory cap.  A no-op while [`crypto_caches_enabled`]
    /// is off.
    pub fn g1_subgroup_memo_insert(&self, encoded: &[u8]) {
        const MEMO_CAP: usize = 8192;
        if !crypto_caches_enabled() {
            return;
        }
        let mut memo = self.g1_validated.lock().unwrap_or_else(|p| p.into_inner());
        if memo.len() >= MEMO_CAP {
            memo.clear();
        }
        memo.insert(encoded.into());
    }

    /// The cofactor `h = (p + 1)/q`.
    pub fn cofactor(&self) -> &Uint {
        &self.cofactor
    }

    /// The base-field context.
    pub fn fp_ctx(&self) -> &Arc<FpCtx> {
        &self.fp_ctx
    }

    /// The scalar-field context.
    pub fn scalar_ctx(&self) -> &Arc<ScalarCtx> {
        &self.scalar_ctx
    }

    /// The generator `g` of the order-`q` curve subgroup.
    pub fn generator(&self) -> &G1Affine {
        &self.generator
    }

    /// The target-group generator `ê(g, g)`.
    pub fn gt_generator(&self) -> &Gt {
        &self.gt_generator
    }

    /// The identity element of the curve group.
    pub fn g1_identity(&self) -> G1Affine {
        G1Affine::identity(&self.fp_ctx)
    }

    /// The identity element of the target group.
    pub fn gt_identity(&self) -> Gt {
        Gt::one(&self.fp_ctx)
    }

    /// Computes the symmetric pairing `ê(a, b) = e(a, φ(b))`.
    ///
    /// This is the *naive* path — a full Miller loop per call — retained both
    /// for arbitrary argument pairs and as the oracle the precomputed path is
    /// tested against.  When one argument is fixed across many calls, prepare
    /// it once with [`Self::prepare`] (or use the cached
    /// [`Self::prepared_generator`]) instead.
    pub fn pairing(&self, a: &G1Affine, b: &G1Affine) -> Gt {
        let unreduced = miller_loop(a, b, &self.q);
        let reduced = final_exponentiation_with_digits(&unreduced, &self.cofactor_wnaf())
            .expect("Miller values are never zero for points on the curve");
        Gt::from_fp2_unchecked(reduced)
    }

    /// The product of pairings `∏ᵢ ê(Pᵢ, Qᵢ)` over prepared first arguments —
    /// one lockstep Miller loop sharing a single accumulator squaring per
    /// step, and **one** final exponentiation for the whole product.
    ///
    /// Bit-identical to multiplying the individual
    /// [`PreparedPairing::pairing`] results in [`Gt`]; an empty batch is the
    /// identity.  See [`crate::precomp::multi_pairing`] for the underlying
    /// free function and the full equivalence argument.
    pub fn multi_pairing(&self, pairs: &[(&PreparedPairing, &G1Affine)]) -> Gt {
        crate::precomp::multi_pairing(pairs).unwrap_or_else(|| Gt::one(&self.fp_ctx))
    }

    /// Reduced pairings `ê(aᵢ, bᵢ)` for a batch of unrelated argument pairs:
    /// one naive Miller loop each, then a *batched* final exponentiation
    /// whose per-element easy-part inversions collapse into a single
    /// extended GCD (Montgomery's trick).
    ///
    /// Element-wise bit-identical to `k` independent [`Self::pairing`] calls.
    /// When the *same* first argument recurs across the batch, prefer
    /// [`PreparedPairing::pairing_batch`], which also reuses the stored
    /// Miller lines.
    pub fn pairing_batch(&self, pairs: &[(&G1Affine, &G1Affine)]) -> Vec<Gt> {
        let fs: Vec<Fp2> = pairs
            .iter()
            .map(|(a, b)| miller_loop(a, b, &self.q))
            .collect();
        final_exponentiation_batch(&fs, &self.cofactor_wnaf())
            .expect("Miller values are never zero for points on the curve")
            .into_iter()
            .map(Gt::from_fp2_unchecked)
            .collect()
    }

    /// The cofactor's cached wNAF recoding (shared by the naive and prepared
    /// final exponentiations).
    pub(crate) fn cofactor_wnaf(&self) -> Arc<Vec<i8>> {
        Arc::clone(
            self.cofactor_digits
                .get_or_init(|| Arc::new(wnaf_digits(&self.cofactor, WNAF_WINDOW))),
        )
    }

    /// Tabulates the Miller loop for a fixed pairing argument; subsequent
    /// pairings against `point` (in either position, by symmetry) only
    /// evaluate the stored lines.  See [`PreparedPairing`].
    pub fn prepare(&self, point: &G1Affine) -> PreparedPairing {
        PreparedPairing::new(self, point)
    }

    /// The prepared Miller loop for the generator `g`, built on first use and
    /// cached for the lifetime of the parameter set.
    pub fn prepared_generator(&self) -> Arc<PreparedPairing> {
        Arc::clone(
            self.prepared_generator
                .get_or_init(|| Arc::new(PreparedPairing::new(self, &self.generator))),
        )
    }

    /// The fixed-base multiplication table for the generator `g`, built on
    /// first use and cached for the lifetime of the parameter set.
    pub fn generator_precomp(&self) -> Arc<G1Precomp> {
        Arc::clone(
            self.generator_precomp
                .get_or_init(|| Arc::new(G1Precomp::new(&self.generator, self.q.bits()))),
        )
    }

    /// `g^k` through the cached fixed-base table — the hot path behind every
    /// `c1 = g^r` and `pk = g^α` in the scheme layers.  Produces the exact
    /// same point as `self.generator().mul_scalar(k)`.
    pub fn mul_generator(&self, k: &Scalar) -> G1Affine {
        self.generator_precomp().mul_scalar(k)
    }

    /// Samples a uniformly random scalar in `Z_q`.
    pub fn random_scalar<R: RngCore + CryptoRng>(&self, rng: &mut R) -> Scalar {
        Scalar::random(&self.scalar_ctx, rng)
    }

    /// Samples a uniformly random non-zero scalar in `Z_q^*`.
    pub fn random_nonzero_scalar<R: RngCore + CryptoRng>(&self, rng: &mut R) -> Scalar {
        Scalar::random_nonzero(&self.scalar_ctx, rng)
    }

    /// Samples a uniformly random point of the order-`q` subgroup.
    pub fn random_g1<R: RngCore + CryptoRng>(&self, rng: &mut R) -> G1Affine {
        self.mul_generator(&Scalar::random_nonzero(&self.scalar_ctx, rng))
    }

    /// Samples a uniformly random element of the target group (the paper's
    /// "`X ∈_R G_1`" used by `Pextract`).
    pub fn random_gt<R: RngCore + CryptoRng>(&self, rng: &mut R) -> Gt {
        self.gt_generator
            .pow_scalar(&Scalar::random_nonzero(&self.scalar_ctx, rng))
    }

    /// The paper's `H1 : {0,1}* → G`, with an explicit domain string.
    pub fn hash_to_g1(&self, domain: &str, fields: &[&[u8]]) -> Result<G1Affine> {
        hash_to_curve(self, domain, fields)
    }

    /// The paper's `H2 : {0,1}* → Z_q^*`, with an explicit domain string.
    pub fn hash_to_zq(&self, domain: &str, fields: &[&[u8]]) -> Scalar {
        hash_to_scalar(&self.scalar_ctx, domain, fields)
    }

    /// Byte length of a serialized (uncompressed, `v0`) curve point.
    pub fn g1_byte_len(&self) -> usize {
        1 + 2 * self.fp_ctx.byte_len()
    }

    /// Byte length of a compressed (`v1`) non-identity curve point.
    pub fn g1_compressed_byte_len(&self) -> usize {
        1 + self.fp_ctx.byte_len()
    }

    /// Byte length of a serialized (uncompressed, `v0`) target-group element.
    pub fn gt_byte_len(&self) -> usize {
        2 * self.fp_ctx.byte_len()
    }

    /// Byte length of a compressed (`v1`) target-group subgroup element.
    pub fn gt_compressed_byte_len(&self) -> usize {
        1 + self.fp_ctx.byte_len()
    }

    /// Byte length of a serialized scalar.
    pub fn scalar_byte_len(&self) -> usize {
        self.scalar_ctx.byte_len()
    }
}

/// The process-wide kill switch for the bit-identical crypto caches (the
/// `G1` subgroup-validation memo here and the delegatee's per-key mask
/// cache).  Caches are on by default; the `TIBPRE_NO_CRYPTO_CACHE`
/// environment variable (any value) disables them at startup, and
/// [`set_crypto_caches_enabled`] flips the switch at runtime.  The caches
/// never change any output — the switch exists so benchmarks can reproduce
/// the uncached per-request cost path and so deployments can trade the
/// bounded cache memory away.
fn crypto_caches_disabled_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| AtomicBool::new(std::env::var_os("TIBPRE_NO_CRYPTO_CACHE").is_some()))
}

/// Whether the bit-identical crypto caches (the `G1` subgroup-validation
/// memo and the delegatee's per-key mask cache) are active.
pub fn crypto_caches_enabled() -> bool {
    !crypto_caches_disabled_flag().load(Ordering::Relaxed)
}

/// Enables or disables the crypto caches process-wide.  Outputs are
/// unaffected either way; only timing and memory change.
pub fn set_crypto_caches_enabled(enabled: bool) {
    crypto_caches_disabled_flag().store(!enabled, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Arc<PairingParams> {
        PairingParams::insecure_toy()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xABCD)
    }

    #[test]
    fn structural_invariants() {
        let pp = params();
        // p = h·q − 1
        let (hq, overflow) = pp.cofactor().mul_wide(pp.q());
        assert!(overflow.is_zero());
        assert_eq!(hq.wrapping_sub(&Uint::ONE), *pp.p());
        // p ≡ 3 (mod 4)
        assert_eq!(pp.p().limbs()[0] & 3, 3);
        // Generator is on the curve, in the subgroup, and not the identity.
        assert!(pp.generator().is_on_curve());
        assert!(!pp.generator().is_identity());
        assert!(pp.generator().is_in_subgroup(pp.q()));
        // Sizes match the requested level.
        assert_eq!(pp.level(), SecurityLevel::Toy);
        assert_eq!(pp.q().bits(), SecurityLevel::Toy.q_bits());
    }

    #[test]
    fn pairing_is_non_degenerate_and_in_subgroup() {
        let pp = params();
        let e_gg = pp.pairing(pp.generator(), pp.generator());
        assert!(!e_gg.is_one());
        assert_eq!(&e_gg, pp.gt_generator());
        assert!(e_gg.is_in_subgroup(pp.q()));
    }

    #[test]
    fn pairing_is_bilinear() {
        let pp = params();
        let mut r = rng();
        let g = pp.generator();
        for _ in 0..3 {
            let a = pp.random_nonzero_scalar(&mut r);
            let b = pp.random_nonzero_scalar(&mut r);
            let ga = g.mul_scalar(&a);
            let gb = g.mul_scalar(&b);
            // ê(aG, bG) = ê(G, G)^{ab}
            let lhs = pp.pairing(&ga, &gb);
            let ab = a.mul(&b);
            let rhs = pp.gt_generator().pow_scalar(&ab);
            assert_eq!(lhs, rhs);
            // ê(aG, G) = ê(G, aG) = ê(G,G)^a  (symmetry)
            assert_eq!(pp.pairing(&ga, g), pp.pairing(g, &ga));
            assert_eq!(pp.pairing(&ga, g), pp.gt_generator().pow_scalar(&a));
        }
    }

    #[test]
    fn pairing_with_identity_is_one() {
        let pp = params();
        let id = pp.g1_identity();
        assert!(pp.pairing(&id, pp.generator()).is_one());
        assert!(pp.pairing(pp.generator(), &id).is_one());
        assert!(pp.pairing(&id, &id).is_one());
    }

    #[test]
    fn pairing_respects_group_structure() {
        let pp = params();
        let mut r = rng();
        let p1 = pp.random_g1(&mut r);
        let p2 = pp.random_g1(&mut r);
        let q = pp.random_g1(&mut r);
        // ê(P1 + P2, Q) = ê(P1, Q) · ê(P2, Q)
        let lhs = pp.pairing(&p1.add(&p2), &q);
        let rhs = pp.pairing(&p1, &q).mul(&pp.pairing(&p2, &q));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn params_multi_pairing_and_batch_match_naive_products() {
        let pp = params();
        let mut r = rng();
        let fixed: Vec<G1Affine> = (0..3).map(|_| pp.random_g1(&mut r)).collect();
        let qs: Vec<G1Affine> = (0..3).map(|_| pp.random_g1(&mut r)).collect();
        let prepared: Vec<_> = fixed.iter().map(|p| pp.prepare(p)).collect();
        let pairs: Vec<_> = prepared.iter().zip(qs.iter()).collect();
        let product = pp.multi_pairing(&pairs);
        let naive = fixed
            .iter()
            .zip(qs.iter())
            .fold(pp.gt_identity(), |acc, (p, q)| acc.mul(&pp.pairing(p, q)));
        assert_eq!(product.to_bytes(), naive.to_bytes());
        assert!(pp.multi_pairing(&[]).is_one());

        let arg_pairs: Vec<(&G1Affine, &G1Affine)> = fixed.iter().zip(qs.iter()).collect();
        let batch = pp.pairing_batch(&arg_pairs);
        for (got, (a, b)) in batch.iter().zip(arg_pairs.iter()) {
            assert_eq!(got.to_bytes(), pp.pairing(a, b).to_bytes());
        }
        assert!(pp.pairing_batch(&[]).is_empty());
    }

    #[test]
    fn hash_to_g1_lands_in_subgroup() {
        let pp = params();
        let a = pp.hash_to_g1("TIBPRE-H1", &[b"alice@example.org"]).unwrap();
        let b = pp.hash_to_g1("TIBPRE-H1", &[b"bob@example.org"]).unwrap();
        let a_again = pp.hash_to_g1("TIBPRE-H1", &[b"alice@example.org"]).unwrap();
        assert!(a.is_on_curve());
        assert!(a.is_in_subgroup(pp.q()));
        assert!(!a.is_identity());
        assert_ne!(a, b);
        assert_eq!(a, a_again);
    }

    #[test]
    fn random_elements_have_the_right_order() {
        let pp = params();
        let mut r = rng();
        let g1 = pp.random_g1(&mut r);
        assert!(g1.is_in_subgroup(pp.q()));
        let gt = pp.random_gt(&mut r);
        assert!(gt.is_in_subgroup(pp.q()));
    }

    #[test]
    fn cached_parameters_are_shared() {
        let a = PairingParams::insecure_toy();
        let b = PairingParams::insecure_toy();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn level_metadata() {
        assert_eq!(SecurityLevel::Low80.q_bits(), 160);
        assert_eq!(SecurityLevel::Low80.p_bits(), 512);
        assert_eq!(SecurityLevel::all().len(), 4);
        assert!(SecurityLevel::High128.label().contains("128"));
    }

    #[test]
    fn byte_lengths_are_consistent() {
        let pp = params();
        let mut r = rng();
        assert_eq!(pp.random_g1(&mut r).to_bytes().len(), pp.g1_byte_len());
        assert_eq!(pp.random_gt(&mut r).to_bytes().len(), pp.gt_byte_len());
        assert_eq!(
            pp.random_scalar(&mut r).to_bytes().len(),
            pp.scalar_byte_len()
        );
    }
}
