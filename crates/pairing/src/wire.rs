//! [`WireEncode`] / [`WireDecode`] implementations for the pairing
//! primitives, plus the [`DecodeCtx`] the scheme layers decode under.
//!
//! # Layouts
//!
//! | type | v0 (legacy) | v1 (default) |
//! |---|---|---|
//! | [`Fp`] | fixed `len(p)` bytes BE | same |
//! | [`Fp2`] | `c0 ‖ c1` | same |
//! | [`Scalar`] | fixed `len(q)` bytes BE | same |
//! | [`G1Affine`] | `0x04 ‖ x ‖ y` (`0x00` = identity) | `0x02/0x03 ‖ x` (`0x00` = identity) |
//! | [`Gt`] | raw `c0 ‖ c1` | `0x02/0x03 ‖ c0` (`0x04 ‖ c0 ‖ c1` fallback) |
//!
//! The `v0` layouts are byte-identical to the pre-`tibpre-wire` encodings,
//! which is what lets durable data written before this crate existed decode
//! through the same code path.
//!
//! # Validation at the boundary
//!
//! Decoding validates **canonical range** (every field element `< p`) and
//! **curve membership** for `G1` points — compressed points are
//! additionally canonical by construction, since only `x` and a sign bit
//! are transmitted.  Two checks are deliberately *not* performed here and
//! are documented per call site:
//!
//! * `G1` **subgroup** membership (`q·P = O`) costs a scalar
//!   multiplication; the scheme types that accept attacker-controlled
//!   points (`c1`, `rk₂`, private keys) perform it in their own `decode`,
//!   exactly once, where the order `q` is in scope.
//! * `Gt` **subgroup** membership (`v^q = 1`) costs a full exponentiation
//!   per element.  The scheme layers never needed it: a mask or message
//!   outside the subgroup decrypts to garbage but breaks nothing, which is
//!   why the legacy code used `Gt::from_bytes_unchecked` everywhere.  The
//!   `v1` layout does not change that acceptance policy (off-torus values
//!   still decode, through the explicit `0x04` fallback tag), but it makes
//!   torus membership *explicit and canonical*: a compressed tag proves
//!   norm 1 by construction, the fallback tag rejects torus members, so
//!   every value has exactly one accepted encoding and the tag never lies.
//!   Callers that do need the full subgroup check use [`Gt::from_bytes`].

use crate::curve::G1Affine;
use crate::fp::{Fp, FpCtx};
use crate::fp2::Fp2;
use crate::gt::Gt;
use crate::params::PairingParams;
use crate::scalar::{Scalar, ScalarCtx};
use std::sync::Arc;
use tibpre_bigint::Uint;
use tibpre_wire::{DecodeError, Reader, WireDecode, WireEncode, WireVersion, Writer};

/// The decode-time context of the scheme layers: the pairing parameters
/// every group element is validated against, exactly once, at the wire
/// boundary.
#[derive(Debug, Clone)]
pub struct DecodeCtx {
    params: Arc<PairingParams>,
}

impl DecodeCtx {
    /// Wraps the shared pairing parameters.
    pub fn new(params: Arc<PairingParams>) -> Self {
        DecodeCtx { params }
    }

    /// The pairing parameters.
    pub fn params(&self) -> &Arc<PairingParams> {
        &self.params
    }

    /// The base-field context.
    pub fn fp_ctx(&self) -> &Arc<FpCtx> {
        self.params.fp_ctx()
    }

    /// The scalar-field context.
    pub fn scalar_ctx(&self) -> &Arc<ScalarCtx> {
        self.params.scalar_ctx()
    }

    /// The prime group order `q`.
    pub fn q(&self) -> &Uint {
        self.params.q()
    }
}

impl From<&Arc<PairingParams>> for DecodeCtx {
    fn from(params: &Arc<PairingParams>) -> Self {
        DecodeCtx::new(Arc::clone(params))
    }
}

/// Maps a validation failure onto a [`DecodeError`] at the reader's
/// current offset.
fn invalid_at(r: &Reader<'_>, what: &'static str) -> DecodeError {
    DecodeError::invalid(r.offset(), what)
}

/// Decodes a `G1` point and checks prime-order subgroup membership
/// (`q·P = O`) — the boundary validation for attacker-controlled points
/// (`c1`, `rk₂`, private keys).  `what` names the field in the error.
pub fn decode_g1_in_subgroup(
    r: &mut Reader<'_>,
    ctx: &DecodeCtx,
    what: &'static str,
) -> Result<G1Affine, DecodeError> {
    let start = r.offset();
    let point = G1Affine::decode(r, ctx.fp_ctx())?;
    // The scalar multiplication `q·P` dominates hot-path decoding, and the
    // same few points recur constantly (a record's `c1` on every disclosure,
    // a key's IBE header in every bundle), so successful checks are memoised
    // process-wide by the exact canonical encoding.  Identical bytes decode
    // to the identical point, so a hit is as strong as a fresh check.
    let encoded = r.window(start);
    if ctx.params().g1_subgroup_memo_contains(encoded) {
        return Ok(point);
    }
    if !point.is_in_subgroup(ctx.q()) {
        return Err(DecodeError::invalid(start, what));
    }
    ctx.params().g1_subgroup_memo_insert(encoded);
    Ok(point)
}

impl WireEncode for Fp {
    fn encode(&self, w: &mut Writer) {
        w.put_slice(&self.to_bytes());
    }
}

impl WireDecode for Fp {
    type Ctx = Arc<FpCtx>;

    fn decode(r: &mut Reader<'_>, ctx: &Self::Ctx) -> Result<Self, DecodeError> {
        let start = r.offset();
        let bytes = r.take(ctx.byte_len())?;
        Fp::from_bytes(ctx, bytes).map_err(|_| DecodeError::invalid(start, "field element"))
    }
}

impl WireEncode for Fp2 {
    fn encode(&self, w: &mut Writer) {
        self.c0.encode(w);
        self.c1.encode(w);
    }
}

impl WireDecode for Fp2 {
    type Ctx = Arc<FpCtx>;

    fn decode(r: &mut Reader<'_>, ctx: &Self::Ctx) -> Result<Self, DecodeError> {
        Ok(Fp2::new(Fp::decode(r, ctx)?, Fp::decode(r, ctx)?))
    }
}

impl WireEncode for Scalar {
    fn encode(&self, w: &mut Writer) {
        w.put_slice(&self.to_bytes());
    }
}

impl WireDecode for Scalar {
    type Ctx = Arc<ScalarCtx>;

    fn decode(r: &mut Reader<'_>, ctx: &Self::Ctx) -> Result<Self, DecodeError> {
        let start = r.offset();
        let bytes = r.take(ctx.byte_len())?;
        Scalar::from_bytes(ctx, bytes).map_err(|_| DecodeError::invalid(start, "scalar"))
    }
}

impl WireEncode for G1Affine {
    fn encode(&self, w: &mut Writer) {
        match w.version() {
            WireVersion::V0 => w.put_slice(&self.to_bytes()),
            WireVersion::V1 => w.put_slice(&self.to_bytes_compressed()),
        }
    }
}

impl WireDecode for G1Affine {
    type Ctx = Arc<FpCtx>;

    /// The point tags are self-describing, so the decoder accepts both the
    /// compressed and the uncompressed form under either version; the
    /// version only governs what the *writer* emits.  Curve membership is
    /// validated here; subgroup membership is the caller's (documented)
    /// responsibility.
    fn decode(r: &mut Reader<'_>, ctx: &Self::Ctx) -> Result<Self, DecodeError> {
        let start = r.offset();
        let tag = r.u8()?;
        let flen = ctx.byte_len();
        match tag {
            0x00 => Ok(G1Affine::identity(ctx)),
            0x04 => {
                let body = r.take(2 * flen)?;
                G1Affine::decode_uncompressed(ctx, &body[..flen], &body[flen..])
                    .map_err(|_| DecodeError::invalid(start, "uncompressed G1 point"))
            }
            0x02 | 0x03 => {
                let body = r.take(flen)?;
                G1Affine::decode_compressed(ctx, tag == 0x03, body)
                    .map_err(|_| DecodeError::invalid(start, "compressed G1 point"))
            }
            other => Err(DecodeError::invalid_tag(start, "G1 point", other)),
        }
    }
}

/// `Gt` compression tags (v1 only; v0 is the raw two-coordinate layout).
mod gt_tag {
    /// Compressed, `c1` has an even canonical representative.
    pub const EVEN: u8 = 0x02;
    /// Compressed, `c1` has an odd canonical representative.
    pub const ODD: u8 = 0x03;
    /// Uncompressed fallback for values off the norm-1 torus (only
    /// produced for values that never appear in honest protocol runs).
    pub const FULL: u8 = 0x04;
}

impl WireEncode for Gt {
    fn encode(&self, w: &mut Writer) {
        let v = self.as_fp2();
        match w.version() {
            WireVersion::V0 => w.put_slice(&self.to_bytes()),
            WireVersion::V1 => {
                // Genuine subgroup elements live on the norm-1 torus
                // (q | p + 1, so v·v̄ = v^{p+1} = 1): c1 is determined by
                // c0 up to sign, and one coordinate plus a parity bit
                // suffice.  Anything else (possible only through
                // `from_fp2_unchecked`) falls back to the full layout so
                // encoding stays total and lossless.
                let norm = &v.c0.square() + &v.c1.square();
                if norm.is_one() {
                    w.put_u8(if v.c1.is_odd_repr() {
                        gt_tag::ODD
                    } else {
                        gt_tag::EVEN
                    });
                    v.c0.encode(w);
                } else {
                    w.put_u8(gt_tag::FULL);
                    v.c0.encode(w);
                    v.c1.encode(w);
                }
            }
        }
    }
}

impl WireDecode for Gt {
    type Ctx = Arc<FpCtx>;

    /// Validates canonical range always.  Under v1 the encoding is also
    /// **canonical**: a compressed tag (`0x02`/`0x03`) proves norm-1 torus
    /// membership by construction (decompression solves `c1² = 1 − c0²`),
    /// and the `0x04` fallback *rejects* torus members — every value has
    /// exactly one accepted encoding, and the tag truthfully reports
    /// whether the element lies on the torus.  Off-torus values are still
    /// accepted (matching v0 and legacy semantics: a bad mask decrypts to
    /// garbage, nothing more); the full `v^q = 1` subgroup check remains
    /// opt-in via [`Gt::from_bytes`] (see the [module docs](self)).
    fn decode(r: &mut Reader<'_>, ctx: &Self::Ctx) -> Result<Self, DecodeError> {
        match r.version() {
            WireVersion::V0 => {
                let value = Fp2::decode(r, ctx)?;
                Ok(Gt::from_fp2_unchecked(value))
            }
            WireVersion::V1 => {
                let start = r.offset();
                let tag = r.u8()?;
                match tag {
                    gt_tag::EVEN | gt_tag::ODD => {
                        let c0 = Fp::decode(r, ctx)?;
                        // c1² = 1 − c0²; an x off the torus has no root.
                        let c1_sq = &Fp::one(ctx) - &c0.square();
                        let mut c1 = c1_sq
                            .sqrt()
                            .ok_or_else(|| invalid_at(r, "compressed Gt element"))?;
                        if c1.is_odd_repr() != (tag == gt_tag::ODD) {
                            c1 = c1.neg();
                        }
                        // Re-check after the fix-up: when c1 = 0 (c0 = ±1)
                        // negation cannot produce the requested odd parity,
                        // and accepting the mismatched tag would give those
                        // elements two encodings.
                        if c1.is_odd_repr() != (tag == gt_tag::ODD) {
                            return Err(invalid_at(
                                r,
                                "non-canonical Gt encoding (impossible c1 parity)",
                            ));
                        }
                        Ok(Gt::from_fp2_unchecked(Fp2::new(c0, c1)))
                    }
                    gt_tag::FULL => {
                        let value = Fp2::decode(r, ctx)?;
                        // Reject torus members smuggled through the
                        // fallback tag: they must use the compressed form,
                        // otherwise one value would have two accepted
                        // encodings (breaking dedup/hashing of serialized
                        // ciphertexts) and the tag would lie about torus
                        // membership.
                        if (&value.c0.square() + &value.c1.square()).is_one() {
                            return Err(DecodeError::invalid(
                                start,
                                "non-canonical Gt encoding (torus member in full layout)",
                            ));
                        }
                        Ok(Gt::from_fp2_unchecked(value))
                    }
                    other => Err(DecodeError::invalid_tag(start, "Gt element", other)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_wire::{decode_bare, encode_bare};

    fn params() -> Arc<PairingParams> {
        PairingParams::insecure_toy()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x31173)
    }

    #[test]
    fn g1_round_trips_both_versions() {
        let pp = params();
        let mut r = rng();
        let ctx = pp.fp_ctx().clone();
        for _ in 0..5 {
            let p = pp.random_g1(&mut r);
            let v0 = encode_bare(&p, WireVersion::V0);
            let v1 = encode_bare(&p, WireVersion::V1);
            assert_eq!(v0, p.to_bytes(), "v0 must match the legacy layout");
            assert_eq!(v1.len(), 1 + ctx.byte_len());
            assert!(v1.len() < v0.len());
            assert_eq!(
                decode_bare::<G1Affine>(&v0, WireVersion::V0, &ctx).unwrap(),
                p
            );
            assert_eq!(
                decode_bare::<G1Affine>(&v1, WireVersion::V1, &ctx).unwrap(),
                p
            );
            // Tags are self-describing: cross-version decode works too.
            assert_eq!(
                decode_bare::<G1Affine>(&v1, WireVersion::V0, &ctx).unwrap(),
                p
            );
        }
        // Identity round-trips in both versions.
        let id = pp.g1_identity();
        for v in [WireVersion::V0, WireVersion::V1] {
            let bytes = encode_bare(&id, v);
            assert_eq!(bytes, vec![0x00]);
            assert_eq!(decode_bare::<G1Affine>(&bytes, v, &ctx).unwrap(), id);
        }
    }

    #[test]
    fn g1_subgroup_memo_serves_repeats_and_never_admits_bad_points() {
        let pp = params();
        let mut r = rng();
        let ctx = DecodeCtx::from(&pp);
        let p = pp.random_g1(&mut r);
        let bytes = encode_bare(&p, WireVersion::V1);
        // The first decode pays the q·P check and memoises the encoding;
        // the repeat is a lookup with the identical result.
        let mut rd = Reader::with_version(&bytes, WireVersion::V1);
        assert_eq!(decode_g1_in_subgroup(&mut rd, &ctx, "p").unwrap(), p);
        assert!(pp.g1_subgroup_memo_contains(&bytes));
        let mut rd = Reader::with_version(&bytes, WireVersion::V1);
        assert_eq!(decode_g1_in_subgroup(&mut rd, &ctx, "p").unwrap(), p);

        // A curve point outside the order-q subgroup is rejected, and
        // rejected again on retry — failures are never memoised.
        let bad = loop {
            let cand = crate::curve::random_curve_point(pp.fp_ctx(), &mut r);
            if !cand.is_in_subgroup(pp.q()) {
                break cand;
            }
        };
        let bad_bytes = encode_bare(&bad, WireVersion::V1);
        for _ in 0..2 {
            let mut rd = Reader::with_version(&bad_bytes, WireVersion::V1);
            assert!(decode_g1_in_subgroup(&mut rd, &ctx, "p").is_err());
            assert!(!pp.g1_subgroup_memo_contains(&bad_bytes));
        }

        // The memo is bounded: flooding it with distinct encodings evicts
        // old entries (wholesale clear at the cap) instead of growing
        // without bound.
        pp.g1_subgroup_memo_insert(b"first");
        for i in 0u32..10_000 {
            pp.g1_subgroup_memo_insert(&i.to_be_bytes());
        }
        assert!(!pp.g1_subgroup_memo_contains(b"first"));
        assert!(pp.g1_subgroup_memo_contains(&9_999u32.to_be_bytes()));
    }

    #[test]
    fn gt_compresses_subgroup_elements() {
        let pp = params();
        let mut r = rng();
        let ctx = pp.fp_ctx().clone();
        for _ in 0..5 {
            let g = pp.random_gt(&mut r);
            let v0 = encode_bare(&g, WireVersion::V0);
            let v1 = encode_bare(&g, WireVersion::V1);
            assert_eq!(v0, g.to_bytes(), "v0 must match the legacy layout");
            assert_eq!(v1.len(), 1 + ctx.byte_len(), "subgroup elements compress");
            assert_eq!(decode_bare::<Gt>(&v0, WireVersion::V0, &ctx).unwrap(), g);
            assert_eq!(decode_bare::<Gt>(&v1, WireVersion::V1, &ctx).unwrap(), g);
        }
    }

    #[test]
    fn gt_off_torus_values_fall_back_to_the_full_layout() {
        let pp = params();
        let mut r = rng();
        let ctx = pp.fp_ctx().clone();
        // A random Fp2 element has norm 1 with negligible probability.
        let raw = Gt::from_fp2_unchecked(Fp2::random(&ctx, &mut r));
        let v1 = encode_bare(&raw, WireVersion::V1);
        assert_eq!(v1[0], gt_tag::FULL);
        assert_eq!(v1.len(), 1 + 2 * ctx.byte_len());
        assert_eq!(decode_bare::<Gt>(&v1, WireVersion::V1, &ctx).unwrap(), raw);
    }

    #[test]
    fn gt_v1_encoding_is_canonical() {
        // A torus member smuggled through the FULL fallback tag is
        // rejected: otherwise one value would have two accepted encodings
        // and the tag would lie about torus membership.
        let pp = params();
        let mut r = rng();
        let ctx = pp.fp_ctx().clone();
        let g = pp.random_gt(&mut r);
        let mut forged = vec![gt_tag::FULL];
        forged.extend(g.as_fp2().c0.to_bytes());
        forged.extend(g.as_fp2().c1.to_bytes());
        let err = decode_bare::<Gt>(&forged, WireVersion::V1, &ctx).unwrap_err();
        assert_eq!(
            err,
            DecodeError::invalid(0, "non-canonical Gt encoding (torus member in full layout)")
        );
        // The canonical (compressed) form still round-trips, of course.
        let canonical = encode_bare(&g, WireVersion::V1);
        assert_eq!(
            decode_bare::<Gt>(&canonical, WireVersion::V1, &ctx).unwrap(),
            g
        );

        // The c1 = 0 corner (identity, c0 = ±1): only the even-parity tag
        // is accepted, so those elements too have exactly one encoding.
        let one = Gt::one(&ctx);
        let canonical = encode_bare(&one, WireVersion::V1);
        assert_eq!(canonical[0], gt_tag::EVEN);
        assert_eq!(
            decode_bare::<Gt>(&canonical, WireVersion::V1, &ctx).unwrap(),
            one
        );
        let mut odd_forged = canonical.clone();
        odd_forged[0] = gt_tag::ODD;
        assert!(decode_bare::<Gt>(&odd_forged, WireVersion::V1, &ctx).is_err());
    }

    #[test]
    fn gt_v1_torus_corner_cases_round_trip_exhaustively() {
        let pp = params();
        let ctx = pp.fp_ctx().clone();
        let one = Fp::one(&ctx);
        let minus_one = one.neg();
        let zero = Fp::zero(&ctx);

        // The four torus points with a zero coordinate: c0 = ±1 (c1 = 0 —
        // the unit and the order-2 element, where decompression must take
        // the square root of zero) and c0 = 0 (c1 = ±1, one per parity).
        let corners = [
            Fp2::new(one.clone(), zero.clone()),
            Fp2::new(minus_one.clone(), zero.clone()),
            Fp2::new(zero.clone(), one.clone()),
            Fp2::new(zero.clone(), minus_one.clone()),
        ];
        for v in &corners {
            let gt = Gt::from_fp2_unchecked(v.clone());
            let enc = encode_bare(&gt, WireVersion::V1);
            let expected_tag = if v.c1.is_odd_repr() {
                gt_tag::ODD
            } else {
                gt_tag::EVEN
            };
            assert_eq!(enc[0], expected_tag, "corner {v:?}");
            assert_eq!(enc.len(), 1 + ctx.byte_len(), "corners compress");
            let dec = decode_bare::<Gt>(&enc, WireVersion::V1, &ctx).unwrap();
            assert_eq!(dec.to_bytes(), gt.to_bytes(), "corner {v:?}");
        }

        // The c1 = 0 corners are their own conjugates, so the flipped
        // parity tag encodes nothing and must be rejected.
        for c0 in [one, minus_one] {
            let gt = Gt::from_fp2_unchecked(Fp2::new(c0, zero.clone()));
            let mut enc = encode_bare(&gt, WireVersion::V1);
            assert_eq!(enc[0], gt_tag::EVEN);
            enc[0] = gt_tag::ODD;
            assert!(decode_bare::<Gt>(&enc, WireVersion::V1, &ctx).is_err());
        }

        // For c1 ≠ 0 both parity branches occur, each round-trips, and the
        // flipped tag is not an alias: it decodes the *conjugate* (the
        // inverse on the norm-1 torus), keeping encodings one-to-one.
        let (mut seen_even, mut seen_odd) = (false, false);
        let mut g = pp.gt_generator().clone();
        for _ in 0..16 {
            if !g.as_fp2().c1.is_zero() {
                let enc = encode_bare(&g, WireVersion::V1);
                match enc[0] {
                    gt_tag::ODD => seen_odd = true,
                    gt_tag::EVEN => seen_even = true,
                    other => panic!("unexpected tag {other:#x}"),
                }
                let dec = decode_bare::<Gt>(&enc, WireVersion::V1, &ctx).unwrap();
                assert_eq!(dec.to_bytes(), g.to_bytes());
                let mut flipped = enc;
                flipped[0] ^= 0x01; // EVEN <-> ODD
                let conj = decode_bare::<Gt>(&flipped, WireVersion::V1, &ctx).unwrap();
                assert_eq!(
                    conj.as_fp2().c1.to_bytes(),
                    g.as_fp2().c1.neg().to_bytes(),
                    "flipped parity is the conjugate"
                );
                assert!(conj.mul(&g).is_one(), "conjugate inverts on the torus");
            }
            g = g.mul(pp.gt_generator());
        }
        assert!(
            seen_even && seen_odd,
            "both parity branches must be exercised"
        );
    }

    #[test]
    fn corrupt_encodings_are_rejected_with_offsets() {
        let pp = params();
        let mut r = rng();
        let ctx = pp.fp_ctx().clone();
        let p = pp.random_g1(&mut r);
        let v1 = encode_bare(&p, WireVersion::V1);
        // Unknown tag.
        let mut bad = v1.clone();
        bad[0] = 0x07;
        assert!(decode_bare::<G1Affine>(&bad, WireVersion::V1, &ctx).is_err());
        // Truncation at every byte.
        for cut in 0..v1.len() {
            assert!(decode_bare::<G1Affine>(&v1[..cut], WireVersion::V1, &ctx).is_err());
        }
        // Trailing bytes.
        let mut longer = v1.clone();
        longer.push(0);
        assert!(decode_bare::<G1Affine>(&longer, WireVersion::V1, &ctx).is_err());
        // An x-coordinate with no curve point: flip parity tag bits until
        // the x decodes but the decompression fails, or the range check
        // fires — either way, an error, never a panic.
        let gt = pp.random_gt(&mut r);
        let mut enc = encode_bare(&gt, WireVersion::V1);
        let last = enc.len() - 1;
        enc[last] ^= 1;
        let _ = decode_bare::<Gt>(&enc, WireVersion::V1, &ctx); // must not panic
    }

    #[test]
    fn scalar_and_fp2_round_trip() {
        let pp = params();
        let mut r = rng();
        let s = pp.random_scalar(&mut r);
        for v in [WireVersion::V0, WireVersion::V1] {
            let bytes = encode_bare(&s, v);
            assert_eq!(bytes, s.to_bytes());
            assert_eq!(
                decode_bare::<Scalar>(&bytes, v, pp.scalar_ctx()).unwrap(),
                s
            );
        }
        let f2 = Fp2::random(pp.fp_ctx(), &mut r);
        let bytes = encode_bare(&f2, WireVersion::V1);
        assert_eq!(bytes, f2.to_bytes());
        assert_eq!(
            decode_bare::<Fp2>(&bytes, WireVersion::V1, pp.fp_ctx()).unwrap(),
            f2
        );
    }

    #[test]
    fn decode_ctx_exposes_the_parameter_handles() {
        let pp = params();
        let ctx = DecodeCtx::from(&pp);
        assert!(Arc::ptr_eq(ctx.params(), &pp));
        assert_eq!(ctx.q(), pp.q());
        assert_eq!(ctx.fp_ctx().byte_len(), pp.fp_ctx().byte_len());
        assert_eq!(ctx.scalar_ctx().byte_len(), pp.scalar_ctx().byte_len());
    }
}
