//! The scalar field `Z_q` where `q` is the prime order of the pairing groups.
//!
//! In the paper's notation the groups have prime order *p*; throughout this
//! workspace we call the group order `q` and reserve `p` for the field prime
//! of the curve, to avoid overloading the symbol.  Scalars are the exponents
//! of the scheme: the KGC master keys, encryption randomness `r`, and the
//! outputs of the paper's `H2` hash.

use crate::error::PairingError;
use crate::Result;
use rand::{CryptoRng, RngCore};
use std::sync::Arc;
use tibpre_bigint::random::{random_below, random_nonzero_below};
use tibpre_bigint::{MontCtx, Uint};

/// Shared context for the scalar field `Z_q`.
#[derive(Debug)]
pub struct ScalarCtx {
    mont: MontCtx,
    byte_len: usize,
}

impl ScalarCtx {
    /// Creates a scalar context for the prime group order `q`.
    pub fn new(q: &Uint) -> Result<Arc<Self>> {
        let mont = MontCtx::new(q)?;
        let byte_len = q.bits().div_ceil(8);
        Ok(Arc::new(ScalarCtx { mont, byte_len }))
    }

    /// The group order `q`.
    pub fn order(&self) -> &Uint {
        self.mont.modulus()
    }

    /// Length of the canonical byte encoding of one scalar.
    pub fn byte_len(&self) -> usize {
        self.byte_len
    }
}

/// An element of `Z_q` (Montgomery form internally).
#[derive(Clone)]
pub struct Scalar {
    ctx: Arc<ScalarCtx>,
    mont_repr: Uint,
}

impl Scalar {
    /// The additive identity.
    pub fn zero(ctx: &Arc<ScalarCtx>) -> Self {
        Scalar {
            ctx: Arc::clone(ctx),
            mont_repr: Uint::ZERO,
        }
    }

    /// The multiplicative identity.
    pub fn one(ctx: &Arc<ScalarCtx>) -> Self {
        Scalar {
            ctx: Arc::clone(ctx),
            mont_repr: ctx.mont.one_mont(),
        }
    }

    /// Constructs a scalar from an arbitrary integer (reduced modulo `q`).
    pub fn from_uint(ctx: &Arc<ScalarCtx>, value: &Uint) -> Self {
        let reduced = ctx.mont.reduce(value);
        Scalar {
            ctx: Arc::clone(ctx),
            mont_repr: ctx.mont.to_mont(&reduced),
        }
    }

    /// Constructs a scalar from a small integer.
    pub fn from_u64(ctx: &Arc<ScalarCtx>, value: u64) -> Self {
        Self::from_uint(ctx, &Uint::from_u64(value))
    }

    /// Samples a uniformly random scalar (possibly zero).
    pub fn random<R: RngCore + CryptoRng>(ctx: &Arc<ScalarCtx>, rng: &mut R) -> Self {
        Self::from_uint(ctx, &random_below(rng, ctx.order()))
    }

    /// Samples a uniformly random *non-zero* scalar, as required for
    /// encryption randomness and master keys (`r, α ∈ Z_q^*`).
    pub fn random_nonzero<R: RngCore + CryptoRng>(ctx: &Arc<ScalarCtx>, rng: &mut R) -> Self {
        Self::from_uint(ctx, &random_nonzero_below(rng, ctx.order()))
    }

    /// The plain integer representative in `[0, q)`.
    pub fn to_uint(&self) -> Uint {
        self.ctx.mont.from_mont(&self.mont_repr)
    }

    /// The scalar context.
    pub fn ctx(&self) -> &Arc<ScalarCtx> {
        &self.ctx
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.mont_repr.is_zero()
    }

    /// Addition modulo `q`.
    pub fn add(&self, other: &Scalar) -> Scalar {
        Scalar {
            ctx: Arc::clone(&self.ctx),
            mont_repr: self.ctx.mont.add(&self.mont_repr, &other.mont_repr),
        }
    }

    /// Subtraction modulo `q`.
    pub fn sub(&self, other: &Scalar) -> Scalar {
        Scalar {
            ctx: Arc::clone(&self.ctx),
            mont_repr: self.ctx.mont.sub(&self.mont_repr, &other.mont_repr),
        }
    }

    /// Negation modulo `q`.
    pub fn neg(&self) -> Scalar {
        Scalar {
            ctx: Arc::clone(&self.ctx),
            mont_repr: self.ctx.mont.neg(&self.mont_repr),
        }
    }

    /// Multiplication modulo `q`.
    pub fn mul(&self, other: &Scalar) -> Scalar {
        Scalar {
            ctx: Arc::clone(&self.ctx),
            mont_repr: self.ctx.mont.mont_mul(&self.mont_repr, &other.mont_repr),
        }
    }

    /// Multiplicative inverse modulo `q`.  Fails for zero.
    pub fn invert(&self) -> Result<Scalar> {
        let inv = self
            .ctx
            .mont
            .mont_inv(&self.mont_repr)
            .map_err(|_| PairingError::NotInvertible)?;
        Ok(Scalar {
            ctx: Arc::clone(&self.ctx),
            mont_repr: inv,
        })
    }

    /// Canonical fixed-length big-endian encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_uint()
            .to_be_bytes(self.ctx.byte_len)
            .expect("reduced scalar always fits")
    }

    /// Decodes the canonical encoding (rejects non-reduced values).
    pub fn from_bytes(ctx: &Arc<ScalarCtx>, bytes: &[u8]) -> Result<Scalar> {
        if bytes.len() != ctx.byte_len {
            return Err(PairingError::InvalidEncoding("wrong scalar length"));
        }
        let value = Uint::from_be_bytes(bytes)
            .map_err(|_| PairingError::InvalidEncoding("scalar does not parse"))?;
        if &value >= ctx.order() {
            return Err(PairingError::InvalidEncoding("scalar not reduced modulo q"));
        }
        Ok(Scalar::from_uint(ctx, &value))
    }
}

impl PartialEq for Scalar {
    fn eq(&self, other: &Self) -> bool {
        self.mont_repr == other.mont_repr && self.ctx.order() == other.ctx.order()
    }
}

impl Eq for Scalar {}

impl core::fmt::Debug for Scalar {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Scalar(0x{})", self.to_uint().to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> Arc<ScalarCtx> {
        // A 61-bit Mersenne prime keeps reference computation easy.
        ScalarCtx::new(&Uint::from_u64((1u64 << 61) - 1)).unwrap()
    }

    #[test]
    fn arithmetic_matches_u128_reference() {
        let q = (1u128 << 61) - 1;
        let c = ctx();
        let a = 0x0123_4567_89AB_CDEF_u64;
        let b = 0x00FE_DCBA_9876_5432_u64;
        let sa = Scalar::from_u64(&c, a);
        let sb = Scalar::from_u64(&c, b);
        assert_eq!(
            sa.add(&sb).to_uint(),
            Uint::from_u128((a as u128 + b as u128) % q)
        );
        assert_eq!(
            sa.mul(&sb).to_uint(),
            Uint::from_u128((a as u128 * b as u128) % q)
        );
        assert_eq!(
            sa.sub(&sb).to_uint(),
            Uint::from_u128((a as u128 + q - b as u128) % q)
        );
        assert_eq!(sa.neg().to_uint(), Uint::from_u128(q - a as u128));
    }

    #[test]
    fn inversion_and_identities() {
        let c = ctx();
        let a = Scalar::from_u64(&c, 987_654_321);
        let inv = a.invert().unwrap();
        assert_eq!(a.mul(&inv), Scalar::one(&c));
        assert!(Scalar::zero(&c).invert().is_err());
        assert_eq!(a.add(&Scalar::zero(&c)), a);
        assert_eq!(a.mul(&Scalar::one(&c)), a);
    }

    #[test]
    fn random_nonzero_is_nonzero() {
        let c = ctx();
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(!Scalar::random_nonzero(&c, &mut r).is_zero());
        }
    }

    #[test]
    fn byte_round_trip_and_validation() {
        let c = ctx();
        let a = Scalar::from_u64(&c, 0xDEADBEEF);
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), c.byte_len());
        assert_eq!(Scalar::from_bytes(&c, &bytes).unwrap(), a);
        assert!(Scalar::from_bytes(&c, &bytes[1..]).is_err());
        let order_bytes = c.order().to_be_bytes(c.byte_len()).unwrap();
        assert!(Scalar::from_bytes(&c, &order_bytes).is_err());
    }

    #[test]
    fn reduction_on_construction() {
        let c = ctx();
        let q = c.order();
        let big = q.wrapping_add(&Uint::from_u64(5));
        assert_eq!(Scalar::from_uint(&c, &big), Scalar::from_u64(&c, 5));
    }
}
