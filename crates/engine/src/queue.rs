//! A lock-striped work-stealing job queue.
//!
//! Jobs are contiguous index ranges over the batch being converted.  Each
//! worker owns one deque; the owner pops from the *front* (cache-friendly,
//! keeps its chunks in input order) while idle workers steal from the *back*
//! of a victim's deque (the classic Arora–Blumofe–Plaxton discipline, which
//! minimises owner/thief contention).  The workload is static — no job ever
//! spawns another job — so a worker that finds every deque empty can
//! terminate: nothing will be enqueued after seeding.
//!
//! The deques are `Mutex<VecDeque>` rather than lock-free ring buffers
//! because jobs here are *pairings* (hundreds of microseconds each at the toy
//! level, milliseconds at 80-bit): an uncontended mutex pop costs tens of
//! nanoseconds, four orders of magnitude below the work it hands out, and the
//! workspace forbids the `unsafe` a Chase–Lev deque would need.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;

/// The work-stealing queue: one deque per worker, seeded round-robin.
pub(crate) struct StealQueue {
    locals: Vec<Mutex<VecDeque<Range<usize>>>>,
}

impl StealQueue {
    /// Splits `0..len` into chunks of `chunk_size` and deals them round-robin
    /// to `workers` deques, so every worker starts with local work spanning
    /// the whole input (good balance even if a worker never steals).
    pub(crate) fn seed(workers: usize, len: usize, chunk_size: usize) -> Self {
        debug_assert!(workers >= 1 && chunk_size >= 1);
        let mut locals: Vec<VecDeque<Range<usize>>> =
            (0..workers).map(|_| VecDeque::new()).collect();
        let mut start = 0usize;
        let mut turn = 0usize;
        while start < len {
            let end = (start + chunk_size).min(len);
            locals[turn % workers].push_back(start..end);
            start = end;
            turn += 1;
        }
        StealQueue {
            locals: locals.into_iter().map(Mutex::new).collect(),
        }
    }

    /// The next job for worker `me`: its own front, else steal another
    /// worker's back.  `None` means the whole batch has been claimed.
    pub(crate) fn next_job(&self, me: usize) -> Option<Range<usize>> {
        if let Some(job) = self.lock(me).pop_front() {
            return Some(job);
        }
        for offset in 1..self.locals.len() {
            let victim = (me + offset) % self.locals.len();
            if let Some(job) = self.lock(victim).pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn lock(&self, idx: usize) -> std::sync::MutexGuard<'_, VecDeque<Range<usize>>> {
        // A panicking worker aborts the batch via join anyway; ignore poison
        // like parking_lot would.
        self.locals[idx]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(queue: &StealQueue, me: usize) -> Vec<Range<usize>> {
        std::iter::from_fn(|| queue.next_job(me)).collect()
    }

    #[test]
    fn seeding_covers_the_input_exactly_once() {
        for (workers, len, chunk) in [(1, 10, 3), (4, 64, 2), (3, 7, 10), (2, 0, 4)] {
            let queue = StealQueue::seed(workers, len, chunk);
            let mut seen = vec![false; len];
            for job in drain_all(&queue, 0) {
                for i in job {
                    assert!(!seen[i], "index {i} handed out twice");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "some index never handed out");
        }
    }

    #[test]
    fn owner_takes_front_thief_takes_back() {
        let queue = StealQueue::seed(2, 8, 2);
        // Worker 0's deque: [0..2, 4..6]; worker 1's: [2..4, 6..8].
        // The owner drains its own deque front-first...
        assert_eq!(queue.next_job(0), Some(0..2));
        assert_eq!(queue.next_job(0), Some(4..6));
        // ...then turns thief and takes the victim's *back* chunk.
        assert_eq!(queue.next_job(0), Some(6..8));
        assert_eq!(queue.next_job(1), Some(2..4));
        assert_eq!(queue.next_job(1), None);
        assert_eq!(queue.next_job(0), None);
    }
}
