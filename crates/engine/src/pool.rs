//! The worker pool: scoped `std::thread` workers over the work-stealing
//! queue, with a generic ordered fallible map as the execution primitive.

use crate::queue::StealQueue;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Maximum worker count accepted from [`ReEncryptEngine::new`] and
/// `TIBPRE_WORKERS` (a guard against typos, not a tuning parameter).
const MAX_WORKERS: usize = 256;

/// A multi-threaded re-encryption engine.
///
/// The engine is a *configuration* (worker count); the threads themselves are
/// scoped to each batch call via [`std::thread::scope`], which is what lets
/// the workers borrow the batch and the key directly — no cloning, no
/// `'static` bounds, no `unsafe`.  Spawning a thread costs a few tens of
/// microseconds while one toy-level pairing costs hundreds, so per-batch
/// spawning is lost in the noise for every batch size worth parallelising;
/// batches below [`Self::parallel_threshold`] run sequentially anyway.
///
/// An engine is cheap to construct and freely shareable (`Sync`); a proxy
/// typically holds one in an `Arc` and uses it for every request.
#[derive(Clone, Debug)]
pub struct ReEncryptEngine {
    workers: usize,
}

impl ReEncryptEngine {
    /// An engine with `workers` threads per batch.  `0` and `1` both mean
    /// sequential execution (no threads are ever spawned); values above 256
    /// are clamped.
    pub fn new(workers: usize) -> Self {
        ReEncryptEngine {
            workers: workers.clamp(1, MAX_WORKERS),
        }
    }

    /// The sequential engine: behaves exactly like calling the
    /// `tibpre-core` batch APIs directly.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// An engine sized from the environment: the `TIBPRE_WORKERS` variable
    /// if it parses, else the machine's available parallelism.  An
    /// *unparsable* value falls back to available parallelism too — exactly
    /// like an unset variable — so a typo degrades nothing (it used to drop
    /// a multi-core node to sequential).
    pub fn from_env() -> Self {
        Self::from_env_reporting().0
    }

    /// [`Self::from_env`], additionally returning the rejected
    /// `TIBPRE_WORKERS` value when one was set but did not parse — callers
    /// with a user interface (the node's startup banner) surface the typo
    /// instead of silently ignoring it.
    pub fn from_env_reporting() -> (Self, Option<String>) {
        let fallback = || Self::new(thread::available_parallelism().map_or(1, |n| n.get()));
        match std::env::var("TIBPRE_WORKERS") {
            Ok(spec) => match spec.trim().parse::<usize>() {
                Ok(n) => (Self::new(n), None),
                Err(_) => (fallback(), Some(spec)),
            },
            Err(_) => (fallback(), None),
        }
    }

    /// The configured worker count (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Batches smaller than this run on the calling thread even on a
    /// multi-worker engine: below two items per worker the fan-out cannot
    /// win.
    pub fn parallel_threshold(&self) -> usize {
        self.workers * 2
    }

    /// Applies `f` to every item, in parallel across the engine's workers,
    /// returning the results in input order.
    ///
    /// `f` receives `(index, &item)`.  If any application fails, the whole
    /// map fails with the error of the **lowest failing input index** — the
    /// error a sequential `for` loop would have surfaced — and every
    /// already-computed result is discarded, so callers observe the same
    /// all-or-nothing behaviour as the sequential batch APIs.
    ///
    /// A panic in `f` propagates to the caller after all workers have
    /// stopped.
    pub fn try_par_map<T, U, E, F>(&self, items: &[T], f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<U, E> + Sync,
    {
        if self.workers <= 1 || items.len() < self.parallel_threshold() {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        // Chunks are a few items each: large enough that queue traffic stays
        // negligible next to the pairing work, small enough that stealing can
        // even out any load imbalance.
        let chunk_size = (items.len() / (self.workers * 4)).max(1);
        let queue = StealQueue::seed(self.workers, items.len(), chunk_size);
        // The lowest failing index seen so far, and its error.  `floor` is a
        // monotonically decreasing copy of the index that workers poll to
        // skip work that a sequential run would never have reached.
        let floor = AtomicUsize::new(usize::MAX);
        let first_error: Mutex<Option<(usize, E)>> = Mutex::new(None);

        let per_worker: Vec<Vec<(usize, U)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|me| {
                    let queue = &queue;
                    let floor = &floor;
                    let first_error = &first_error;
                    let f = &f;
                    scope.spawn(move || {
                        let mut produced = Vec::new();
                        while let Some(job) = queue.next_job(me) {
                            // Work entirely above a known failure can be
                            // dropped: the sequential loop would have stopped
                            // before it.  Work below the floor must still run
                            // (it may contain an even earlier error).
                            if job.start > floor.load(Ordering::Relaxed) {
                                continue;
                            }
                            for i in job {
                                match f(i, &items[i]) {
                                    Ok(value) => produced.push((i, value)),
                                    Err(e) => {
                                        let mut slot =
                                            first_error.lock().unwrap_or_else(|p| p.into_inner());
                                        if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                                            *slot = Some((i, e));
                                            floor.fetch_min(i, Ordering::Relaxed);
                                        }
                                        break;
                                    }
                                }
                            }
                        }
                        produced
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });

        if let Some((_, e)) = first_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(e);
        }
        let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
        for (i, value) in per_worker.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(value);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every index was either produced or an error was returned"))
            .collect())
    }

    /// Index-driven variant of [`Self::try_par_map`]: maps `f` over
    /// `0..count` without materialising an item slice first.  Used by
    /// callers whose "items" are positions into some shared structure — a
    /// snapshot's blob table, a store's shard array — rather than a `&[T]`.
    ///
    /// Below the parallel threshold it runs on the calling thread with zero
    /// allocation beyond the result vector.
    pub fn try_par_map_indices<U, E, F>(&self, count: usize, f: F) -> Result<Vec<U>, E>
    where
        U: Send,
        E: Send,
        F: Fn(usize) -> Result<U, E> + Sync,
    {
        if self.workers <= 1 || count < self.parallel_threshold() {
            return (0..count).map(&f).collect();
        }
        let indices: Vec<usize> = (0..count).collect();
        self.try_par_map(&indices, |_, &i| f(i))
    }

    /// Chunk-level infallible map: `f` converts one contiguous index range
    /// into the corresponding output vector, letting callers amortise
    /// per-chunk work across every item of a job — the re-encryption engine
    /// uses this to run one *batched* final exponentiation per work-stealing
    /// job instead of one per ciphertext.
    ///
    /// `f` must return exactly `range.len()` outputs for the range it was
    /// given; results are reassembled in input order.  Below the parallel
    /// threshold the whole input is handed to `f` as a single chunk on the
    /// calling thread (maximal amortisation, zero threads).  A panic in `f`
    /// propagates to the caller after all workers have stopped.
    pub fn par_map_chunks<U, F>(&self, count: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(std::ops::Range<usize>) -> Vec<U> + Sync,
    {
        if self.workers <= 1 || count < self.parallel_threshold() {
            let out = f(0..count);
            debug_assert_eq!(out.len(), count, "chunk map must be length-preserving");
            return out;
        }
        let chunk_size = (count / (self.workers * 4)).max(1);
        let queue = StealQueue::seed(self.workers, count, chunk_size);
        let per_worker: Vec<Vec<(usize, Vec<U>)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|me| {
                    let queue = &queue;
                    let f = &f;
                    scope.spawn(move || {
                        let mut produced = Vec::new();
                        while let Some(job) = queue.next_job(me) {
                            let start = job.start;
                            let expected = job.len();
                            let out = f(job);
                            debug_assert_eq!(
                                out.len(),
                                expected,
                                "chunk map must be length-preserving"
                            );
                            produced.push((start, out));
                        }
                        produced
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        let mut chunks: Vec<(usize, Vec<U>)> = per_worker.into_iter().flatten().collect();
        chunks.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(count);
        for (start, mut chunk) in chunks {
            debug_assert_eq!(start, out.len(), "chunks must tile the input exactly");
            out.append(&mut chunk);
        }
        out
    }

    /// Infallible variant of [`Self::try_par_map`].
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let result: Result<Vec<U>, std::convert::Infallible> =
            self.try_par_map(items, |i, t| Ok(f(i, t)));
        match result {
            Ok(values) => values,
            Err(never) => match never {},
        }
    }
}

impl Default for ReEncryptEngine {
    /// Defaults to [`Self::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(ReEncryptEngine::new(0).workers(), 1);
        assert_eq!(ReEncryptEngine::new(1).workers(), 1);
        assert_eq!(ReEncryptEngine::new(8).workers(), 8);
        assert_eq!(ReEncryptEngine::new(100_000).workers(), MAX_WORKERS);
        assert_eq!(ReEncryptEngine::sequential().workers(), 1);
    }

    /// Regression: an unparsable `TIBPRE_WORKERS` must behave like an
    /// *unset* one (available parallelism), not like `1` — the old typo
    /// path silently dropped a multi-core node to sequential.  One test
    /// drives every case serially because the variable is process-global.
    #[test]
    fn from_env_falls_back_to_available_parallelism_on_garbage() {
        let machine = thread::available_parallelism().map_or(1, |n| n.get());
        let saved = std::env::var("TIBPRE_WORKERS").ok();

        std::env::remove_var("TIBPRE_WORKERS");
        let (unset, rejected) = ReEncryptEngine::from_env_reporting();
        assert_eq!(unset.workers(), machine.clamp(1, MAX_WORKERS));
        assert!(rejected.is_none());

        for garbage in ["eight", "4x", "", " ", "-2", "3.5"] {
            std::env::set_var("TIBPRE_WORKERS", garbage);
            let (engine, rejected) = ReEncryptEngine::from_env_reporting();
            assert_eq!(engine.workers(), unset.workers(), "spec {garbage:?}");
            assert_eq!(rejected.as_deref(), Some(garbage), "spec {garbage:?}");
        }

        // Parsable values are honoured (with surrounding whitespace), and
        // nothing is reported as rejected.
        std::env::set_var("TIBPRE_WORKERS", " 3 ");
        let (engine, rejected) = ReEncryptEngine::from_env_reporting();
        assert_eq!(engine.workers(), 3);
        assert!(rejected.is_none());

        match saved {
            Some(v) => std::env::set_var("TIBPRE_WORKERS", v),
            None => std::env::remove_var("TIBPRE_WORKERS"),
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for workers in [1, 2, 4, 7] {
            let engine = ReEncryptEngine::new(workers);
            let out = engine.par_map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_par_map_returns_the_lowest_index_error() {
        let items: Vec<u64> = (0..512).collect();
        let engine = ReEncryptEngine::new(4);
        // Fail on every multiple of 97; the sequential loop would report 0...
        // so make 0 succeed and the real first failure be 97.
        let result: Result<Vec<u64>, u64> =
            engine.try_par_map(
                &items,
                |_, &x| {
                    if x != 0 && x % 97 == 0 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                },
            );
        assert_eq!(result.unwrap_err(), 97);
    }

    #[test]
    fn try_par_map_empty_and_tiny_inputs() {
        let engine = ReEncryptEngine::new(4);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(engine.par_map(&empty, |_, &x| x), empty);
        assert_eq!(engine.par_map(&[41u32], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn try_par_map_indices_matches_the_sequential_loop() {
        for workers in [1, 4] {
            let engine = ReEncryptEngine::new(workers);
            let out: Result<Vec<usize>, ()> = engine.try_par_map_indices(1000, |i| Ok(i * 3));
            assert_eq!(out.unwrap(), (0..1000).map(|i| i * 3).collect::<Vec<_>>());
            let err: Result<Vec<usize>, usize> = engine.try_par_map_indices(1000, |i| {
                if i >= 100 && i % 100 == 0 {
                    Err(i)
                } else {
                    Ok(i)
                }
            });
            assert_eq!(err.unwrap_err(), 100, "workers {workers}");
            let empty: Result<Vec<usize>, ()> = engine.try_par_map_indices(0, Ok);
            assert_eq!(empty.unwrap(), Vec::<usize>::new());
        }
    }

    #[test]
    fn par_map_chunks_matches_the_flat_map() {
        let expected: Vec<usize> = (0..777).map(|i| i * 7).collect();
        for workers in [1, 2, 4, 7] {
            let engine = ReEncryptEngine::new(workers);
            let out = engine.par_map_chunks(777, |range| range.map(|i| i * 7).collect());
            assert_eq!(out, expected, "workers {workers}");
        }
        // Empty and tiny inputs take the single-chunk path.
        let engine = ReEncryptEngine::new(4);
        assert_eq!(engine.par_map_chunks(0, |r| r.collect::<Vec<_>>()), vec![]);
        assert_eq!(engine.par_map_chunks(1, |r| r.collect::<Vec<_>>()), vec![0]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..256).collect();
        let engine = ReEncryptEngine::new(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.par_map(&items, |_, &x| {
                if x == 128 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(caught.is_err());
    }
}
