//! # tibpre-engine — the multi-threaded proxy re-encryption engine
//!
//! The paper's deployment story is a semi-trusted proxy serving many patients
//! and delegatees at once.  Independent `Preenc` conversions share no mutable
//! state — after a re-encryption key's one-time pairing preparation, each
//! ciphertext conversion only *reads* the key's stored line coefficients — so
//! a burst of conversions is embarrassingly parallel.  This crate exploits
//! that: [`ReEncryptEngine`] fans the batch conversion APIs of `tibpre-core`
//! out over a pool of `std::thread` workers fed by a work-stealing job queue.
//!
//! Three properties are preserved exactly from the sequential APIs, and the
//! oracle tests assert them:
//!
//! * **Ordering** — output `i` is the conversion of input `i`, always.
//! * **First-error semantics** — a failing batch returns the error the
//!   sequential loop would have returned (the one at the lowest input index),
//!   with no partial output.
//! * **Bit-identical output** — the parallel path calls the *same* per-item
//!   conversion functions, so results are byte-for-byte equal to
//!   [`tibpre_core::proxy::re_encrypt_batch`] /
//!   [`tibpre_core::hybrid::re_encrypt_hybrid_batch`].
//!
//! An engine with one worker (the [`ReEncryptEngine::sequential`]
//! constructor, or `TIBPRE_WORKERS=1`) never spawns a thread and simply runs
//! the sequential batch path, so single-core deployments pay no
//! synchronisation cost.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod pool;
mod queue;

pub use pool::ReEncryptEngine;

use tibpre_core::hybrid::{self, HybridCiphertext, ReEncryptedHybridCiphertext};
use tibpre_core::proxy::{self, validate_batch_types, ReEncryptedCiphertext};
use tibpre_core::{ReEncryptionKey, Result, TypedCiphertext};

impl ReEncryptEngine {
    /// `Preenc` over a batch of same-type ciphertexts with one key, fanned
    /// out across the engine's workers.
    ///
    /// Semantics are identical to [`tibpre_core::proxy::re_encrypt_batch`]:
    /// the whole batch is type-checked before any conversion happens, results
    /// keep the input order, and the output is bit-identical to the
    /// sequential path.  The key's Miller-loop tabulation is forced *before*
    /// the fan-out, so the workers only ever read the shared table
    /// (`ReEncryptionKey`'s cache is an `Arc<OnceLock>` — read-only once
    /// initialised).
    pub fn re_encrypt_batch(
        &self,
        ciphertexts: &[TypedCiphertext],
        rekey: &ReEncryptionKey,
    ) -> Result<Vec<ReEncryptedCiphertext>> {
        if self.workers() <= 1 || ciphertexts.len() <= 1 {
            return proxy::re_encrypt_batch(ciphertexts, rekey);
        }
        validate_batch_types(ciphertexts.iter().map(|ct| &ct.type_tag), rekey)?;
        // One-time table build, done once on this thread rather than raced by
        // every worker on first use.
        let _ = rekey.prepared_rk_point();
        // Each work-stealing job converts its whole chunk through the batched
        // path, amortising one final-exponentiation easy-part inversion per
        // chunk rather than paying one GCD per ciphertext.
        Ok(self.par_map_chunks(ciphertexts.len(), |range| {
            let refs: Vec<&TypedCiphertext> = ciphertexts[range].iter().collect();
            proxy::re_encrypt_validated_batch(&refs, rekey)
        }))
    }

    /// The hybrid counterpart of [`Self::re_encrypt_batch`]: converts the KEM
    /// headers of many hybrid ciphertexts in parallel, forwarding the AEAD
    /// bodies untouched.
    ///
    /// Semantics are identical to
    /// [`tibpre_core::hybrid::re_encrypt_hybrid_batch`] (atomic up-front
    /// validation, input ordering, bit-identical output).
    pub fn re_encrypt_hybrid_batch<'a, I>(
        &self,
        ciphertexts: I,
        rekey: &ReEncryptionKey,
    ) -> Result<Vec<ReEncryptedHybridCiphertext>>
    where
        I: IntoIterator<Item = &'a HybridCiphertext>,
    {
        let ciphertexts: Vec<&HybridCiphertext> = ciphertexts.into_iter().collect();
        if self.workers() <= 1 || ciphertexts.len() <= 1 {
            return hybrid::re_encrypt_hybrid_batch(ciphertexts, rekey);
        }
        validate_batch_types(ciphertexts.iter().map(|ct| &ct.header.type_tag), rekey)?;
        let _ = rekey.prepared_rk_point();
        // Headers of each chunk go through the shared batched conversion;
        // bodies are re-attached untouched.
        Ok(self.par_map_chunks(ciphertexts.len(), |range| {
            let chunk = &ciphertexts[range];
            let headers: Vec<&TypedCiphertext> = chunk.iter().map(|ct| &ct.header).collect();
            proxy::re_encrypt_validated_batch(&headers, rekey)
                .into_iter()
                .zip(chunk)
                .map(|(header, ct)| ReEncryptedHybridCiphertext {
                    header,
                    body: ct.body.clone(),
                })
                .collect()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use tibpre_core::{Delegatee, Delegator, TypeTag};
    use tibpre_ibe::{Identity, Kgc};
    use tibpre_pairing::PairingParams;

    struct Fixture {
        params: Arc<PairingParams>,
        delegator: Delegator,
        delegatee: Delegatee,
        rekey: ReEncryptionKey,
        rng: StdRng,
    }

    fn fixture(type_tag: &TypeTag) -> Fixture {
        let mut rng = StdRng::seed_from_u64(0xE9);
        let params = PairingParams::insecure_toy();
        let kgc1 = Kgc::setup(params.clone(), "kgc1", &mut rng);
        let kgc2 = Kgc::setup(params.clone(), "kgc2", &mut rng);
        let alice = Identity::new("alice");
        let bob = Identity::new("bob");
        let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
        let rekey = delegator
            .make_reencryption_key(&bob, kgc2.public_params(), type_tag, &mut rng)
            .unwrap();
        Fixture {
            params,
            delegator,
            delegatee: Delegatee::new(kgc2.extract(&bob)),
            rekey,
            rng,
        }
    }

    #[test]
    fn engine_matches_sequential_batch_bitwise() {
        let t = TypeTag::new("illness-history");
        let mut f = fixture(&t);
        let messages: Vec<_> = (0..13).map(|_| f.params.random_gt(&mut f.rng)).collect();
        let cts: Vec<_> = messages
            .iter()
            .map(|m| f.delegator.encrypt_typed(m, &t, &mut f.rng))
            .collect();

        let sequential = proxy::re_encrypt_batch(&cts, &f.rekey).unwrap();
        for workers in [1, 2, 3, 4] {
            let engine = ReEncryptEngine::new(workers);
            let parallel = engine.re_encrypt_batch(&cts, &f.rekey).unwrap();
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.to_bytes(), s.to_bytes(), "workers={workers}");
            }
        }
        // And the outputs actually decrypt.
        for (m, ct) in messages.iter().zip(&sequential) {
            assert_eq!(&f.delegatee.decrypt_reencrypted(ct).unwrap(), m);
        }
    }

    #[test]
    fn engine_hybrid_matches_sequential_and_decrypts() {
        let t = TypeTag::new("emergency");
        let mut f = fixture(&t);
        let payloads: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; 64 + i as usize]).collect();
        let cts: Vec<_> = payloads
            .iter()
            .map(|p| f.delegator.encrypt_bytes(p, b"aad", &t, &mut f.rng))
            .collect();

        let sequential = hybrid::re_encrypt_hybrid_batch(&cts, &f.rekey).unwrap();
        let engine = ReEncryptEngine::new(4);
        let parallel = engine.re_encrypt_hybrid_batch(&cts, &f.rekey).unwrap();
        assert_eq!(parallel, sequential);
        for (payload, ct) in payloads.iter().zip(&parallel) {
            assert_eq!(&f.delegatee.decrypt_bytes(ct, b"aad").unwrap(), payload);
        }
    }

    #[test]
    fn mixed_batch_fails_atomically_with_first_error() {
        let t = TypeTag::new("diet");
        let mut f = fixture(&t);
        let m = f.params.random_gt(&mut f.rng);
        let good = f.delegator.encrypt_typed(&m, &t, &mut f.rng);
        let bad = f
            .delegator
            .encrypt_typed(&m, &TypeTag::new("imaging"), &mut f.rng);
        let batch = vec![good.clone(), bad, good];
        let engine = ReEncryptEngine::new(4);
        let sequential_err = proxy::re_encrypt_batch(&batch, &f.rekey).unwrap_err();
        let parallel_err = engine.re_encrypt_batch(&batch, &f.rekey).unwrap_err();
        assert_eq!(parallel_err, sequential_err);
    }

    #[test]
    fn empty_batch_is_empty() {
        let t = TypeTag::new("t");
        let f = fixture(&t);
        let engine = ReEncryptEngine::new(4);
        assert!(engine.re_encrypt_batch(&[], &f.rekey).unwrap().is_empty());
        assert!(engine
            .re_encrypt_hybrid_batch(std::iter::empty(), &f.rekey)
            .unwrap()
            .is_empty());
    }
}
