//! The bounds-checked, zero-copy [`Reader`] and the version-carrying
//! [`Writer`].
//!
//! The reader is a cursor over a borrowed byte slice; `take` hands back
//! sub-slices of the input without copying, so decoding a composite value
//! allocates only for the fields that genuinely own their bytes.  Every
//! failure is a [`DecodeError`] value carrying the cursor offset — never a
//! panic.  The writer is the encoding dual: it carries the envelope
//! [`WireVersion`] so nested fields (for instance a curve point inside a
//! ciphertext inside a WAL frame) know which layout to emit without the
//! version being threaded through every `encode` signature.

use crate::error::DecodeError;
use crate::version::WireVersion;

/// Appends a `u32` big-endian (free-function form kept for callers building
/// raw payloads without a [`Writer`]).
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_be_bytes());
}

/// Appends a `u64` big-endian.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_be_bytes());
}

/// Appends a length-prefixed byte string (`u32 BE` length, then the bytes).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// A bounds-checked decoding cursor over a borrowed payload.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    offset: usize,
    version: WireVersion,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `bytes`, assuming the current default
    /// wire version for version-dependent fields.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self::with_version(bytes, WireVersion::DEFAULT)
    }

    /// A cursor decoding under an explicit wire version (used for bare
    /// payloads whose version is known from context, e.g. a legacy WAL
    /// frame that predates the envelope byte).
    pub fn with_version(bytes: &'a [u8], version: WireVersion) -> Self {
        Reader {
            bytes,
            offset: 0,
            version,
        }
    }

    /// The version version-dependent fields decode under.
    pub fn version(&self) -> WireVersion {
        self.version
    }

    /// Switches the decode version (called after reading an envelope byte).
    pub fn set_version(&mut self, version: WireVersion) {
        self.version = version;
    }

    /// The cursor's byte offset into the input.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The raw bytes consumed since `start` (an offset previously obtained
    /// from [`Self::offset`]) — lets a decoder key caches by a field's exact
    /// canonical encoding without re-serializing the decoded value.
    pub fn window(&self, start: usize) -> &'a [u8] {
        &self.bytes[start.min(self.offset)..self.offset]
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.offset
    }

    /// Takes `n` raw bytes, zero-copy.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::truncated(self.offset, n, self.remaining()));
        }
        let slice = &self.bytes[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32 BE`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64 BE`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed byte string, zero-copy.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Advances the cursor over `n` bytes without materialising them —
    /// the partial-decode primitive used by header peeks that stop before
    /// a record's expensive fields.
    pub fn skip(&mut self, n: usize) -> Result<(), DecodeError> {
        self.take(n).map(|_| ())
    }

    /// Skips one length-prefixed byte string (`u32 BE` length, then the
    /// bytes) without materialising it.
    pub fn skip_bytes(&mut self) -> Result<(), DecodeError> {
        let len = self.u32()? as usize;
        self.skip(len)
    }

    /// The next byte without consuming it (`None` at the end of input).
    /// Used by version-sniffing containers to dispatch on an envelope tag
    /// before committing to a decode path.
    pub fn peek_u8(&self) -> Option<u8> {
        self.bytes.get(self.offset).copied()
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let start = self.offset;
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| DecodeError::invalid(start, "UTF-8 string"))
    }

    /// Asserts the payload is fully consumed (catches trailing garbage).
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::trailing(self.offset, self.remaining()))
        }
    }
}

/// An encoding buffer that carries the envelope version, so nested fields
/// pick the right layout.
#[derive(Debug)]
pub struct Writer {
    buf: Vec<u8>,
    version: WireVersion,
}

impl Writer {
    /// An empty writer emitting the current default wire version.
    pub fn new() -> Self {
        Self::with_version(WireVersion::DEFAULT)
    }

    /// An empty writer emitting an explicit wire version.
    pub fn with_version(version: WireVersion) -> Self {
        Writer {
            buf: Vec::new(),
            version,
        }
    }

    /// The version version-dependent fields encode under.
    pub fn version(&self) -> WireVersion {
        self.version
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a `u32 BE`.
    pub fn put_u32(&mut self, value: u32) {
        put_u32(&mut self.buf, value);
    }

    /// Appends a `u64 BE`.
    pub fn put_u64(&mut self, value: u64) {
        put_u64(&mut self.buf, value);
    }

    /// Appends raw bytes with no framing.
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed byte string (`u32 BE` length, then bytes).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        put_bytes(&mut self.buf, bytes);
    }

    /// Appends a length-prefixed *nested encoding*: reserves the 4-byte
    /// length slot, runs `f`, then backfills the slot with however many
    /// bytes `f` wrote.  This is how composite types embed self-delimiting
    /// children without encoding them into a scratch buffer first.
    ///
    /// # Panics
    ///
    /// If the nested encoding reaches 4 GiB (the `u32` length prefix would
    /// wrap, and a wrapped length under an intact CRC would be *silent*
    /// corruption — failing fast at encode time is the only safe option).
    pub fn put_nested(&mut self, f: impl FnOnce(&mut Writer)) {
        let slot = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 4]);
        f(self);
        let written = self.buf.len() - slot - 4;
        let written = u32::try_from(written)
            .expect("nested encoding exceeds the u32 length prefix (≥ 4 GiB)");
        self.buf[slot..slot + 4].copy_from_slice(&written.to_be_bytes());
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_fields() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(42);
        w.put_bytes(b"payload");
        w.put_nested(|w| {
            w.put_u8(1);
            w.put_bytes(b"inner");
        });
        let out = w.into_bytes();
        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.bytes().unwrap(), b"payload");
        let nested = r.bytes().unwrap();
        assert_eq!(nested.len(), 1 + 4 + 5);
        r.finish().unwrap();
    }

    #[test]
    fn short_and_trailing_inputs_are_errors_not_panics() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"abc");
        // Truncation anywhere fails cleanly, with the offset reported.
        for cut in 0..out.len() {
            let mut r = Reader::new(&out[..cut]);
            assert!(r.bytes().is_err(), "cut {cut}");
        }
        // A length field larger than the buffer fails cleanly.
        let mut huge = Vec::new();
        put_u32(&mut huge, u32::MAX);
        let mut r = Reader::new(&huge);
        let err = r.bytes().unwrap_err();
        assert_eq!(err.offset, 4);
        // Trailing garbage is caught by finish().
        let mut extra = out.clone();
        extra.push(0);
        let mut r = Reader::new(&extra);
        r.bytes().unwrap();
        let err = r.finish().unwrap_err();
        assert_eq!(err, DecodeError::trailing(out.len(), 1));
    }

    #[test]
    fn skip_and_peek_track_the_cursor_without_copying() {
        let mut w = Writer::new();
        w.put_u64(7);
        w.put_bytes(b"skipped");
        w.put_bytes(b"kept");
        let out = w.into_bytes();
        let mut r = Reader::new(&out);
        assert_eq!(r.peek_u8(), Some(0));
        r.skip(8).unwrap();
        r.skip_bytes().unwrap();
        assert_eq!(r.bytes().unwrap(), b"kept");
        assert_eq!(r.peek_u8(), None);
        r.finish().unwrap();
        // Skips past the end fail like takes do.
        let mut r = Reader::new(&out);
        assert!(r.skip(out.len() + 1).is_err());
        let mut huge = Vec::new();
        put_u32(&mut huge, u32::MAX);
        assert!(Reader::new(&huge).skip_bytes().is_err());
    }

    #[test]
    fn versions_propagate() {
        let w = Writer::with_version(WireVersion::V0);
        assert_eq!(w.version(), WireVersion::V0);
        let mut r = Reader::with_version(b"x", WireVersion::V0);
        assert_eq!(r.version(), WireVersion::V0);
        r.set_version(WireVersion::V1);
        assert_eq!(r.version(), WireVersion::V1);
    }
}
