//! Length-prefixed stream framing: the network counterpart of the storage
//! crate's CRC frames.
//!
//! A network frame is `len (u32 BE) ‖ payload`, where the payload is a
//! versioned-envelope encoding ([`crate::WireEncode::to_wire_bytes`]) of one
//! protocol message.  TCP already guarantees integrity, so unlike the WAL
//! frames there is no checksum — but the length field is attacker-controlled
//! input, so every reader enforces a maximum frame size *before* allocating
//! and treats an oversized prefix as a protocol violation, not an allocation
//! request.
//!
//! EOF handling distinguishes the two cases a server cares about:
//!
//! * a peer that closes its socket *between* frames produced a clean end of
//!   stream — [`read_frame`] returns `Ok(None)`,
//! * a peer that dies *mid-frame* left a torn frame — that is
//!   [`FrameError::Io`] with `UnexpectedEof`, and the connection carries no
//!   further trustworthy bytes.

use std::fmt;
use std::io::{self, Read, Write};

/// Default maximum frame size (payload bytes) accepted by readers and
/// writers: large enough for a multi-record disclosure batch, small enough
/// that a hostile length prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME: usize = 8 * 1024 * 1024;

/// Bytes of the frame length prefix.
pub const FRAME_PREFIX_LEN: usize = 4;

/// A framing failure.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (includes mid-frame EOF as
    /// `UnexpectedEof`).
    Io(io::Error),
    /// A length prefix exceeded the configured maximum — the peer is either
    /// broken or hostile, and the stream position can no longer be trusted.
    Oversized {
        /// The length the prefix claimed.
        len: u64,
        /// The configured maximum.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte maximum")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (`len ‖ payload`).  Refuses payloads above `max` so a
/// writer can never emit a frame its peer is guaranteed to reject.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: usize) -> Result<(), FrameError> {
    if payload.len() > max {
        return Err(FrameError::Oversized {
            len: payload.len() as u64,
            max,
        });
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Writes a run of frames with one vectored syscall where the platform
/// allows it: the length prefixes and payloads are gathered into a single
/// `write_vectored` call (falling back to plain `write` loops on partial
/// writes), so a server answering a pipelined burst pays one syscall for
/// the whole run instead of two per response.
///
/// Every payload is checked against `max` *before* any byte is written, so
/// a failing call leaves the stream untouched (same contract as
/// [`write_frame`]).
pub fn write_frames(
    w: &mut impl Write,
    payloads: &[Vec<u8>],
    max: usize,
) -> Result<(), FrameError> {
    for payload in payloads {
        if payload.len() > max {
            return Err(FrameError::Oversized {
                len: payload.len() as u64,
                max,
            });
        }
    }
    let prefixes: Vec<[u8; FRAME_PREFIX_LEN]> = payloads
        .iter()
        .map(|p| (p.len() as u32).to_be_bytes())
        .collect();
    // The flattened byte sequence: prefix0 ‖ payload0 ‖ prefix1 ‖ …  Track a
    // single global offset across partial writes and rebuild the IoSlice run
    // from it — simpler than advancing slices in place, and partial vectored
    // writes are rare on a healthy socket.
    let total: usize = payloads.iter().map(|p| p.len() + FRAME_PREFIX_LEN).sum();
    let mut written = 0usize;
    while written < total {
        let mut slices: Vec<io::IoSlice<'_>> = Vec::with_capacity(payloads.len() * 2);
        let mut skip = written;
        for (prefix, payload) in prefixes.iter().zip(payloads) {
            for part in [&prefix[..], &payload[..]] {
                if skip >= part.len() {
                    skip -= part.len();
                    continue;
                }
                slices.push(io::IoSlice::new(&part[skip..]));
                skip = 0;
            }
        }
        match w.write_vectored(&slices) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "stream accepted no frame bytes",
                )))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame, returning `Ok(None)` on a clean EOF *before* the length
/// prefix (the peer hung up between frames).  EOF inside the prefix or the
/// payload is a torn frame and surfaces as `UnexpectedEof`; a prefix above
/// `max` fails before any payload allocation.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; FRAME_PREFIX_LEN];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max {
        return Err(FrameError::Oversized {
            len: len as u64,
            max,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_including_empty_payloads() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, &[0xAB; 300], DEFAULT_MAX_FRAME).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            vec![0xAB; 300]
        );
        // Clean EOF at the frame boundary.
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn torn_frames_are_unexpected_eof_not_clean_end() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload-bytes", DEFAULT_MAX_FRAME).unwrap();
        // Every truncation point except 0 is a torn frame.
        for cut in 1..buf.len() {
            let mut r = io::Cursor::new(&buf[..cut]);
            match read_frame(&mut r, DEFAULT_MAX_FRAME) {
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}")
                }
                other => panic!("cut {cut}: expected torn-frame error, got {other:?}"),
            }
        }
    }

    #[test]
    fn write_frames_matches_frame_by_frame_output() {
        let payloads = vec![b"hello".to_vec(), Vec::new(), vec![0xEE; 300]];
        let mut one_by_one = Vec::new();
        for p in &payloads {
            write_frame(&mut one_by_one, p, DEFAULT_MAX_FRAME).unwrap();
        }
        let mut vectored = Vec::new();
        write_frames(&mut vectored, &payloads, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(vectored, one_by_one);
        // Empty runs write nothing.
        let mut empty = Vec::new();
        write_frames(&mut empty, &[], DEFAULT_MAX_FRAME).unwrap();
        assert!(empty.is_empty());
    }

    /// A writer that accepts at most `cap` bytes per call, forcing the
    /// partial-write resumption path.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }

    impl io::Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_frames_survives_partial_vectored_writes() {
        let payloads = vec![vec![1u8; 7], vec![2u8; 13], vec![3u8; 1]];
        let mut expected = Vec::new();
        for p in &payloads {
            write_frame(&mut expected, p, DEFAULT_MAX_FRAME).unwrap();
        }
        for cap in [1, 2, 3, 5, 8] {
            let mut w = Dribble {
                out: Vec::new(),
                cap,
            };
            write_frames(&mut w, &payloads, DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(w.out, expected, "cap {cap}");
        }
    }

    #[test]
    fn write_frames_rejects_oversized_before_writing_anything() {
        let payloads = vec![vec![0u8; 10], vec![0u8; 2048]];
        let mut out = Vec::new();
        assert!(matches!(
            write_frames(&mut out, &payloads, 1024),
            Err(FrameError::Oversized { len: 2048, .. })
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn oversized_prefix_fails_before_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"whatever");
        let mut r = io::Cursor::new(buf);
        match read_frame(&mut r, 1024) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u64::from(u32::MAX));
                assert_eq!(max, 1024);
            }
            other => panic!("expected oversized error, got {other:?}"),
        }
        // The writer enforces the same bound.
        let mut out = Vec::new();
        assert!(matches!(
            write_frame(&mut out, &[0u8; 2048], 1024),
            Err(FrameError::Oversized { .. })
        ));
        assert!(out.is_empty());
    }
}
