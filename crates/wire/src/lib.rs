//! # tibpre-wire — the unified wire codec of the TIB-PRE workspace
//!
//! In the scheme of Ibraimi et al. every artifact that crosses a trust
//! boundary — ciphertexts `(c₁, c₂)`, re-encryption keys, delegation
//! tokens — is a tuple of group elements, so byte layout *is* the system's
//! bandwidth and storage story.  This crate centralises that layout:
//!
//! * [`Reader`] / [`Writer`] — a bounds-checked, zero-copy cursor pair
//!   (absorbing what used to be `tibpre_storage::codec`), with every
//!   failure a [`DecodeError`] value carrying the offending offset.
//! * [`WireVersion`] — the one-byte versioned envelope: `v0` is the
//!   original uncompressed layout (and doubles as the reader for durable
//!   data written before the envelope existed), `v1` is the compact
//!   default with compressed group elements.
//! * [`WireEncode`] / [`WireDecode`] — the traits every serialized type in
//!   the workspace implements.  `encode`/`decode` handle the bare,
//!   version-aware body; `to_wire_bytes`/`from_wire_bytes` wrap it in the
//!   envelope and reject trailing bytes.
//! * [`framing`] — length-prefixed stream frames (`len (u32 BE) ‖ envelope`),
//!   the form the node protocol carries these messages in over TCP, with a
//!   maximum-size guard enforced before any allocation.
//!
//! Decoding is context-driven: group elements need their field/parameter
//! handles to validate (on-curve, canonical range) exactly once at the
//! boundary, so [`WireDecode`] carries an associated `Ctx` type.  The
//! pairing crate provides the concrete `DecodeCtx` wrapping
//! `Arc<PairingParams>` that the scheme layers use.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
pub mod framing;
mod io;
mod version;

pub use error::{DecodeError, DecodeErrorKind};
pub use framing::{read_frame, write_frame, write_frames, FrameError, DEFAULT_MAX_FRAME};
pub use io::{put_bytes, put_u32, put_u64, Reader, Writer};
pub use version::WireVersion;

/// A type with a canonical, version-aware wire encoding.
pub trait WireEncode {
    /// Appends the bare (envelope-less) encoding of `self` to the writer,
    /// using the writer's [`WireVersion`] for version-dependent fields.
    fn encode(&self, w: &mut Writer);

    /// Serializes under an explicit envelope version: one version byte,
    /// then the bare encoding.
    fn to_wire_bytes_versioned(&self, version: WireVersion) -> Vec<u8> {
        let mut w = Writer::with_version(version);
        w.put_u8(version.tag());
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Serializes under the default (current) envelope version.
    fn to_wire_bytes(&self) -> Vec<u8> {
        self.to_wire_bytes_versioned(WireVersion::DEFAULT)
    }
}

/// A type decodable from its canonical wire encoding.
pub trait WireDecode: Sized {
    /// The context needed to validate fields at the boundary (field
    /// contexts, pairing parameters, or `()` for self-contained types).
    type Ctx;

    /// Decodes the bare (envelope-less) encoding from the reader, using
    /// the reader's [`WireVersion`] for version-dependent fields.  Does
    /// *not* check for trailing bytes — the caller owns the cursor.
    fn decode(r: &mut Reader<'_>, ctx: &Self::Ctx) -> Result<Self, DecodeError>;

    /// Parses a versioned envelope: reads the version byte, decodes the
    /// body under that version, and rejects unknown versions and trailing
    /// bytes.
    fn from_wire_bytes(bytes: &[u8], ctx: &Self::Ctx) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let version =
            WireVersion::from_tag(tag).ok_or_else(|| DecodeError::unknown_version(0, tag))?;
        r.set_version(version);
        let value = Self::decode(&mut r, ctx)?;
        r.finish()?;
        Ok(value)
    }
}

/// Encodes a bare (envelope-less) body under an explicit version — the
/// form nested fields and version-sniffing containers use.
pub fn encode_bare<T: WireEncode + ?Sized>(value: &T, version: WireVersion) -> Vec<u8> {
    let mut w = Writer::with_version(version);
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a bare (envelope-less) body under an explicit version,
/// rejecting trailing bytes.
pub fn decode_bare<T: WireDecode>(
    bytes: &[u8],
    version: WireVersion,
    ctx: &T::Ctx,
) -> Result<T, DecodeError> {
    let mut r = Reader::with_version(bytes, version);
    let value = T::decode(&mut r, ctx)?;
    r.finish()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy wire type exercising the default trait plumbing.
    #[derive(Debug, PartialEq)]
    struct Pair(u32, Vec<u8>);

    impl WireEncode for Pair {
        fn encode(&self, w: &mut Writer) {
            w.put_u32(self.0);
            w.put_bytes(&self.1);
        }
    }

    impl WireDecode for Pair {
        type Ctx = ();
        fn decode(r: &mut Reader<'_>, _ctx: &()) -> Result<Self, DecodeError> {
            Ok(Pair(r.u32()?, r.bytes()?.to_vec()))
        }
    }

    #[test]
    fn envelope_round_trip_and_rejections() {
        let value = Pair(9, b"abc".to_vec());
        for version in [WireVersion::V0, WireVersion::V1] {
            let bytes = value.to_wire_bytes_versioned(version);
            assert_eq!(bytes[0], version.tag());
            assert_eq!(Pair::from_wire_bytes(&bytes, &()).unwrap(), value);
            // Truncation anywhere fails.
            for cut in 0..bytes.len() {
                assert!(Pair::from_wire_bytes(&bytes[..cut], &()).is_err());
            }
            // Trailing bytes fail.
            let mut longer = bytes.clone();
            longer.push(0);
            assert!(Pair::from_wire_bytes(&longer, &()).is_err());
            // An unknown version tag fails with the right kind.
            let mut wrong = bytes.clone();
            wrong[0] = 0xEE;
            let err = Pair::from_wire_bytes(&wrong, &()).unwrap_err();
            assert_eq!(err, DecodeError::unknown_version(0, 0xEE));
        }
        // Default version is v1.
        assert_eq!(value.to_wire_bytes()[0], WireVersion::V1.tag());
    }

    #[test]
    fn bare_helpers_round_trip() {
        let value = Pair(1, b"z".to_vec());
        let bytes = encode_bare(&value, WireVersion::V0);
        assert_eq!(
            decode_bare::<Pair>(&bytes, WireVersion::V0, &()).unwrap(),
            value
        );
        let mut longer = bytes.clone();
        longer.push(7);
        assert!(decode_bare::<Pair>(&longer, WireVersion::V0, &()).is_err());
    }
}
