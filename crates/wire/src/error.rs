//! The single decode-failure type every deserializer in the workspace
//! reports.
//!
//! Before this crate existed, truncation and corruption surfaced as an
//! inconsistent mix of `PairingError::InvalidEncoding`,
//! `PreError::InvalidEncoding`, `IbeError::InvalidCiphertext`,
//! `PhrError::CorruptedRecord` and `StorageError::Corrupt` variants, each
//! with its own idea of what to say about the bad input.  [`DecodeError`]
//! replaces all of them at the byte layer: it records *where* the decoder
//! stopped and *why*, and every layer's error enum offers a `From` impl so
//! the `?` operator carries it upward unchanged.

use core::fmt;

/// Why a decode failed, with enough detail to point at the broken field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// The input ended before a field was complete.
    Truncated {
        /// Bytes the field still needed.
        expected: usize,
        /// Bytes that were actually left.
        got: usize,
    },
    /// A complete value was decoded but input bytes remained.
    TrailingBytes {
        /// Number of unconsumed bytes.
        trailing: usize,
    },
    /// The leading envelope byte named a version this binary does not know.
    UnknownVersion {
        /// The unrecognised version tag.
        tag: u8,
    },
    /// A tag byte had no meaning at its position.
    InvalidTag {
        /// What the tag was supposed to select (e.g. `"G1 point"`).
        what: &'static str,
        /// The unrecognised tag value.
        tag: u8,
    },
    /// A field parsed structurally but failed validation (out-of-range field
    /// element, point not on the curve, invalid UTF-8, …).
    Invalid {
        /// What failed to validate.
        what: &'static str,
    },
}

/// A decode failure: the byte offset the cursor had reached plus the reason.
///
/// Errors are values, never panics — a corrupted input must not be able to
/// take a recovery path (or a network front-end) down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset into the input at which the failure was detected.
    pub offset: usize,
    /// The failure classification.
    pub kind: DecodeErrorKind,
}

impl DecodeError {
    /// The input ended `expected − got` bytes too early.
    pub fn truncated(offset: usize, expected: usize, got: usize) -> Self {
        DecodeError {
            offset,
            kind: DecodeErrorKind::Truncated { expected, got },
        }
    }

    /// A complete value left `trailing` bytes unconsumed.
    pub fn trailing(offset: usize, trailing: usize) -> Self {
        DecodeError {
            offset,
            kind: DecodeErrorKind::TrailingBytes { trailing },
        }
    }

    /// The envelope named an unknown version.
    pub fn unknown_version(offset: usize, tag: u8) -> Self {
        DecodeError {
            offset,
            kind: DecodeErrorKind::UnknownVersion { tag },
        }
    }

    /// A tag byte had no meaning at this position.
    pub fn invalid_tag(offset: usize, what: &'static str, tag: u8) -> Self {
        DecodeError {
            offset,
            kind: DecodeErrorKind::InvalidTag { what, tag },
        }
    }

    /// A structurally-complete field failed validation.
    pub fn invalid(offset: usize, what: &'static str) -> Self {
        DecodeError {
            offset,
            kind: DecodeErrorKind::Invalid { what },
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DecodeErrorKind::Truncated { expected, got } => write!(
                f,
                "truncated input at offset {}: expected {expected} more bytes, got {got}",
                self.offset
            ),
            DecodeErrorKind::TrailingBytes { trailing } => write!(
                f,
                "{trailing} trailing bytes after a complete value at offset {}",
                self.offset
            ),
            DecodeErrorKind::UnknownVersion { tag } => write!(
                f,
                "unknown wire-format version 0x{tag:02x} at offset {}",
                self.offset
            ),
            DecodeErrorKind::InvalidTag { what, tag } => write!(
                f,
                "invalid {what} tag 0x{tag:02x} at offset {}",
                self.offset
            ),
            DecodeErrorKind::Invalid { what } => {
                write!(f, "invalid {what} at offset {}", self.offset)
            }
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_offset_and_cause() {
        let e = DecodeError::truncated(7, 32, 5);
        assert!(e.to_string().contains("offset 7"));
        assert!(e.to_string().contains("expected 32"));
        assert!(e.to_string().contains("got 5"));
        assert!(DecodeError::trailing(9, 3)
            .to_string()
            .contains("3 trailing"));
        assert!(DecodeError::unknown_version(0, 0xEE)
            .to_string()
            .contains("0xee"));
        assert!(DecodeError::invalid_tag(4, "G1 point", 0x09)
            .to_string()
            .contains("G1 point"));
        assert!(DecodeError::invalid(2, "field element")
            .to_string()
            .contains("field element"));
    }
}
