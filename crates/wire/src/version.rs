//! The one-byte versioned envelope.
//!
//! Every top-level artifact that crosses a trust or durability boundary —
//! a ciphertext handed to a client, a re-encryption key installed at a
//! proxy, a WAL frame, a snapshot payload — starts with a single version
//! byte.  Decoders read it, switch the [`Reader`](crate::Reader) to that
//! version, and parse the remainder under the rules of that format
//! generation.  Nested fields never carry their own envelope; they inherit
//! the container's version.
//!
//! # Tag values
//!
//! The tags are `0xE0` (v0) and `0xE1` (v1) rather than `0` and `1` because
//! durable data written *before the envelope existed* must remain
//! recognisable: legacy WAL operation frames start with a tag in `1..=3`,
//! legacy audit events with `1..=6`, legacy shard-state snapshots with the
//! high byte of a `u64` record count (effectively `0`), and legacy group
//! elements with `0x00`/`0x02`/`0x03`/`0x04`.  No legacy artifact starts
//! with a byte in `0xE0..=0xEF`, so a decoder can sniff one leading byte
//! and fall back to the bare legacy layout when it is not an envelope tag.

/// A wire-format generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireVersion {
    /// The original formats: uncompressed `G1` points (`0x04 ‖ x ‖ y`) and
    /// raw two-coordinate target-group elements.  Matches the pre-envelope
    /// on-disk layouts byte for byte, so v0 decoding doubles as the legacy
    /// reader.
    V0,
    /// The compact formats (current default): compressed `G1` points
    /// (`0x02/0x03 ‖ x`) and sign-compressed target-group elements — about
    /// half the bytes for every group element on the wire.
    V1,
}

impl WireVersion {
    /// The version new data is written with.
    pub const DEFAULT: WireVersion = WireVersion::V1;

    /// The envelope byte of this version.
    pub fn tag(self) -> u8 {
        match self {
            WireVersion::V0 => 0xE0,
            WireVersion::V1 => 0xE1,
        }
    }

    /// Parses an envelope byte.
    pub fn from_tag(tag: u8) -> Option<WireVersion> {
        match tag {
            0xE0 => Some(WireVersion::V0),
            0xE1 => Some(WireVersion::V1),
            _ => None,
        }
    }

    /// Whether `first_byte` can open a versioned envelope at all — used by
    /// readers of durable data to distinguish enveloped payloads from bare
    /// legacy layouts.
    pub fn is_envelope_tag(first_byte: u8) -> bool {
        Self::from_tag(first_byte).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip_and_reject_unknowns() {
        for v in [WireVersion::V0, WireVersion::V1] {
            assert_eq!(WireVersion::from_tag(v.tag()), Some(v));
            assert!(WireVersion::is_envelope_tag(v.tag()));
        }
        // Legacy first bytes must never look like an envelope.
        for legacy in [0x00u8, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06] {
            assert!(!WireVersion::is_envelope_tag(legacy));
        }
        assert_eq!(WireVersion::from_tag(0xEE), None);
        assert_eq!(WireVersion::DEFAULT, WireVersion::V1);
    }
}
