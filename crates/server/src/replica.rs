//! The read-replica runtime: bootstrap, tail, reconnect, promote.
//!
//! A store node started with `--replica-of <addr>` keeps an **in-memory**
//! [`EncryptedPhrStore`] that mirrors a durable primary by replaying the
//! primary's own commit format: raw WAL bytes shipped as `SegmentChunk`
//! frames and whole snapshot generation files shipped as
//! `SnapshotGeneration` frames.  The replica applies frames exactly the way
//! crash recovery does — buffer bytes, scan for intact CRC frames, apply
//! the longest valid prefix — so every invariant the recovery tests pin
//! down ("a crash cannot resurrect a revoked key") transfers verbatim to
//! replication.
//!
//! The stream protocol is deliberately dumb:
//!
//! 1. the replica connects and sends one `SubscribeReplication { applied }`
//!    request — an empty vector on first boot (the primary's answer sizes
//!    the replica's shard count), per-shard resume offsets afterwards;
//! 2. the primary answers with a `ReplicaStatus` and then pushes
//!    `SegmentChunk` / `SnapshotGeneration` frames, interleaving
//!    `ReplicaStatus` heartbeats while idle;
//! 3. the replica never writes again on that connection.  Any defect — a
//!    torn TCP stream, a chunk that does not start exactly at the next
//!    expected byte, a CRC failure inside a chunk — tears the connection
//!    down and re-subscribes from the last *applied* offsets, dropping any
//!    partially buffered bytes.  Resume-from-applied makes redelivery
//!    idempotent: a frame is either fully applied (and never requested
//!    again) or not applied at all.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tibpre_client::{Request, Response};
use tibpre_pairing::DecodeCtx;
use tibpre_phr::EncryptedPhrStore;
use tibpre_storage::frame;
use tibpre_wire::{read_frame, write_frame, WireDecode, WireEncode};

/// Upper bound on a replication frame the replica will accept.  Snapshot
/// generations ship as one frame, so this is deliberately far above the
/// request-path default.
pub const MAX_REPLICATION_FRAME: usize = 1 << 30;

/// How long the tail thread waits for the first byte of the next pushed
/// frame before re-checking the stop flag.
const TAIL_POLL: Duration = Duration::from_millis(100);

/// No frame (the primary heartbeats about once a second) for this long
/// means the primary is gone: tear down and reconnect.
const SILENCE_LIMIT: Duration = Duration::from_secs(10);

/// Steady-state backoff between reconnect attempts while the primary is
/// unreachable.  A subscription that dies *after making progress* (any
/// applied offset advanced) reconnects immediately instead: a transient
/// network cut mid-stream must not cost a quarter second of catch-up per
/// incident, or a flaky path that cuts faster than the backoff can starve
/// the replica outright.  Only consecutive fruitless attempts climb the
/// ladder — see [`reconnect_delay`].
const RECONNECT_BACKOFF: Duration = Duration::from_millis(250);

/// Intermediate rung of the reconnect ladder: one free immediate retry,
/// then this, then [`RECONNECT_BACKOFF`] steady-state.
const RECONNECT_BACKOFF_SHORT: Duration = Duration::from_millis(25);

/// Delay before the next subscription attempt, given how many consecutive
/// attempts have ended without applying anything: immediate, 25ms, then
/// 250ms steady-state.  The ladder keeps a cut-prone-but-live path from
/// starving the replica while still bounding the connect rate against a
/// dead or persistently defective primary.
fn reconnect_delay(fruitless: u32) -> Duration {
    match fruitless {
        0 | 1 => Duration::ZERO,
        2 => RECONNECT_BACKOFF_SHORT,
        _ => RECONNECT_BACKOFF,
    }
}

/// Shared replica state: the write gate and the per-shard applied offsets.
///
/// `applied[shard]` is the logical WAL offset *after* the last frame fully
/// applied to the replica store — the exact resume point sent on
/// re-subscription, and the offset the revocation-ordering invariant is
/// stated against: every policy event at an offset below `applied` is
/// visible, nothing at or above it is.
#[derive(Debug)]
pub struct ReplicaControl {
    promoted: AtomicBool,
    stopping: AtomicBool,
    connected: AtomicBool,
    applied: parking_lot::Mutex<Vec<u64>>,
}

impl ReplicaControl {
    /// Fresh control state with `shards` offsets at the given start.
    pub fn new(applied: Vec<u64>) -> Self {
        ReplicaControl {
            promoted: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            connected: AtomicBool::new(false),
            applied: parking_lot::Mutex::new(applied),
        }
    }

    /// Whether this replica accepts writes (only after [`Self::promote`]).
    pub fn writable(&self) -> bool {
        self.promoted.load(Ordering::SeqCst)
    }

    /// Flips the write gate open and stops the tail thread: the replica
    /// stops following its former primary and serves writes from now on.
    pub fn promote(&self) {
        self.promoted.store(true, Ordering::SeqCst);
    }

    /// Asks the tail thread to exit (node shutdown).
    pub fn request_stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
    }

    /// Whether the tail thread should exit.
    pub fn stopping(&self) -> bool {
        self.stopping.load(Ordering::SeqCst) || self.promoted.load(Ordering::SeqCst)
    }

    /// Whether the tail is currently subscribed to the primary.
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::SeqCst)
    }

    /// The per-shard applied offsets (a snapshot; the tail keeps moving).
    pub fn positions(&self) -> Vec<u64> {
        self.applied.lock().clone()
    }

    fn set_position(&self, shard: usize, offset: u64) {
        self.applied.lock()[shard] = offset;
    }
}

/// Frames and writes one request onto a raw stream.
fn send_request(stream: &mut TcpStream, request: &Request) -> io::Result<()> {
    let payload = request.to_wire_bytes();
    let mut out = Vec::with_capacity(payload.len() + 4);
    write_frame(&mut out, &payload, usize::MAX)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "unframeable request"))?;
    stream.write_all(&out)
}

/// Reads one pushed frame, polling `stop` while idle.  Returns `Ok(None)`
/// when asked to stop or when the primary has been silent too long.
fn read_pushed(
    stream: &mut TcpStream,
    ctx: &DecodeCtx,
    stop: &dyn Fn() -> bool,
) -> io::Result<Option<Response>> {
    stream.set_read_timeout(Some(TAIL_POLL))?;
    let deadline = Instant::now() + SILENCE_LIMIT;
    let mut first = [0u8; 1];
    loop {
        match stream.read(&mut first) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop() {
                    return Ok(None);
                }
                if Instant::now() >= deadline {
                    return Err(io::ErrorKind::TimedOut.into());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // A frame has started; allow a generous window for the rest of it
    // (snapshot generations can be large).
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let first_buf = [first[0]];
    let mut chained = (&first_buf[..]).chain(&mut *stream);
    let payload = match read_frame(&mut chained, MAX_REPLICATION_FRAME) {
        Ok(Some(payload)) => payload,
        Ok(None) => return Err(io::ErrorKind::UnexpectedEof.into()),
        Err(e) => return Err(io::Error::other(format!("replication frame: {e}"))),
    };
    let response = Response::from_wire_bytes(&payload, ctx)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad push frame: {e}")))?;
    Ok(Some(response))
}

/// Connects to the primary and subscribes from the given applied offsets.
/// Returns the live stream plus the primary's first status frame.
pub fn subscribe(
    addr: &str,
    ctx: &DecodeCtx,
    applied: Vec<u64>,
) -> io::Result<(TcpStream, Vec<u64>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    send_request(&mut stream, &Request::SubscribeReplication { applied })?;
    match read_pushed(&mut stream, ctx, &|| false)? {
        Some(Response::ReplicaStatus { positions, .. }) => Ok((stream, positions)),
        Some(Response::Error(e)) => Err(io::Error::other(format!("primary refused: {e}"))),
        Some(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected ReplicaStatus, got {}", response_kind(&other)),
        )),
        None => Err(io::ErrorKind::TimedOut.into()),
    }
}

/// Connects and subscribes, retrying until `deadline` (boot path: the
/// primary may still be coming up).
pub fn subscribe_with_retry(
    addr: &str,
    ctx: &DecodeCtx,
    applied: Vec<u64>,
    deadline: Instant,
) -> io::Result<(TcpStream, Vec<u64>)> {
    loop {
        match subscribe(addr, ctx, applied.clone()) {
            Ok(found) => return Ok(found),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(RECONNECT_BACKOFF),
        }
    }
}

fn response_kind(response: &Response) -> &'static str {
    match response {
        Response::ReplicaStatus { .. } => "ReplicaStatus",
        Response::SnapshotGeneration { .. } => "SnapshotGeneration",
        Response::SegmentChunk { .. } => "SegmentChunk",
        Response::Error(_) => "Error",
        _ => "a non-replication response",
    }
}

/// Why one subscription ended (the tail loop decides whether to resume).
enum TailEnd {
    /// Stop/promote observed — exit the tail thread.
    Stopped,
    /// Connection defect — drop buffers, reconnect from applied offsets.
    Resync(io::Error),
}

/// Consumes pushed frames on one subscription until defect or stop.
fn drain_stream(
    mut stream: TcpStream,
    store: &EncryptedPhrStore,
    control: &ReplicaControl,
    ctx: &DecodeCtx,
) -> TailEnd {
    let shards = control.positions().len();
    // Raw bytes received but not yet forming a complete frame, per shard.
    let mut buffered: Vec<Vec<u8>> = vec![Vec::new(); shards];
    loop {
        let pushed = match read_pushed(&mut stream, ctx, &|| control.stopping()) {
            Ok(Some(response)) => response,
            Ok(None) => return TailEnd::Stopped,
            Err(e) => return TailEnd::Resync(e),
        };
        match pushed {
            Response::ReplicaStatus { .. } => {} // heartbeat
            Response::SnapshotGeneration {
                shard,
                gen,
                wal_offset: _,
                bytes,
            } => {
                let shard = shard as usize;
                if shard >= shards {
                    return TailEnd::Resync(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "snapshot for an unknown shard",
                    ));
                }
                match store.install_replica_snapshot(shard, gen, &bytes) {
                    Ok(offset) => {
                        buffered[shard].clear();
                        control.set_position(shard, offset);
                    }
                    Err(e) => {
                        return TailEnd::Resync(io::Error::other(format!(
                            "snapshot install failed: {e}"
                        )))
                    }
                }
            }
            Response::SegmentChunk {
                shard,
                start,
                bytes,
            } => {
                let shard = shard as usize;
                if shard >= shards {
                    return TailEnd::Resync(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "chunk for an unknown shard",
                    ));
                }
                let applied = control.positions()[shard];
                let expected = applied + buffered[shard].len() as u64;
                if start != expected {
                    // Chain gap: bytes are missing between what we hold and
                    // what arrived.  Never apply across a gap — resubscribe
                    // from the applied offset instead.
                    return TailEnd::Resync(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("chunk gap on shard {shard}: expected {expected}, got {start}"),
                    ));
                }
                buffered[shard].extend_from_slice(&bytes);
                let scan = frame::scan(&buffered[shard], 0);
                if matches!(scan.defect, Some(frame::FrameDefect::CrcMismatch)) {
                    return TailEnd::Resync(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt frame in replication stream on shard {shard}"),
                    ));
                }
                for payload in &scan.frames {
                    if let Err(e) = store.apply_replication_frame(shard, payload) {
                        return TailEnd::Resync(io::Error::other(format!(
                            "replication apply failed: {e}"
                        )));
                    }
                }
                // A torn tail (incomplete trailing frame) stays buffered
                // until the next chunk completes it.
                buffered[shard].drain(..scan.valid_len as usize);
                control.set_position(shard, applied + scan.valid_len);
            }
            Response::Error(e) => {
                return TailEnd::Resync(io::Error::other(format!("primary error: {e}")))
            }
            other => {
                return TailEnd::Resync(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected push frame: {}", response_kind(&other)),
                ))
            }
        }
    }
}

/// The tail thread body: follow the primary until stopped or promoted,
/// reconnecting (and resuming from the applied offsets) on any defect.
pub fn run_tail(
    primary: String,
    store: Arc<EncryptedPhrStore>,
    control: Arc<ReplicaControl>,
    ctx: DecodeCtx,
    first_stream: TcpStream,
) {
    let mut stream = Some(first_stream);
    // Consecutive subscription attempts that ended without applying a
    // single byte — the index into the reconnect ladder.
    let mut fruitless: u32 = 0;
    while !control.stopping() {
        let live = match stream.take() {
            Some(live) => live,
            None => {
                match subscribe(&primary, &ctx, control.positions()) {
                    Ok((live, _positions)) => live,
                    Err(_) => {
                        // Primary unreachable: keep serving reads from what
                        // is already applied, retry until stop/promote.
                        fruitless = fruitless.saturating_add(1);
                        std::thread::sleep(reconnect_delay(fruitless));
                        continue;
                    }
                }
            }
        };
        control.connected.store(true, Ordering::SeqCst);
        let before = control.positions();
        let end = drain_stream(live, &store, &control, &ctx);
        control.connected.store(false, Ordering::SeqCst);
        match end {
            TailEnd::Stopped => break,
            TailEnd::Resync(_defect) => {
                // Partial buffers died with drain_stream; the next
                // subscription resumes from the applied offsets.  A stream
                // that advanced them earns an immediate reconnect.
                if control.positions() != before {
                    fruitless = 0;
                } else {
                    fruitless = fruitless.saturating_add(1);
                }
                std::thread::sleep(reconnect_delay(fruitless));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconnect_ladder_climbs_only_on_consecutive_fruitless_attempts() {
        // A subscription that made progress reconnects immediately, and so
        // does the first fruitless retry — a transient mid-stream cut must
        // not cost a steady-state backoff.  Only repeated failures climb.
        assert_eq!(reconnect_delay(0), Duration::ZERO);
        assert_eq!(reconnect_delay(1), Duration::ZERO);
        assert_eq!(reconnect_delay(2), RECONNECT_BACKOFF_SHORT);
        assert_eq!(reconnect_delay(3), RECONNECT_BACKOFF);
        assert_eq!(reconnect_delay(u32::MAX), RECONNECT_BACKOFF);
        assert!(RECONNECT_BACKOFF_SHORT < RECONNECT_BACKOFF);
    }
}
