//! SIGINT/SIGTERM → a process-wide shutdown flag.
//!
//! The node's accept loop polls [`interrupted`] between accepts; a signal
//! therefore triggers the same graceful drain as a `Shutdown` frame.  The
//! handler itself only stores into an `AtomicBool` — the one thing that is
//! unconditionally async-signal-safe.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod ffi {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` rather than `sigaction(2)`: we need no siginfo, no
        // masks, and no SA_RESTART control — just a handler swap, which
        // `signal` does portably across the unix targets we build on.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT and SIGTERM handlers.  Idempotent; call once per
/// process before the accept loop starts.
pub fn install() {
    #[cfg(unix)]
    // SAFETY: `on_signal` is an `extern "C"` fn that only performs an
    // atomic store, which is async-signal-safe.  Passing a function
    // pointer as `usize` matches the `signal(2)` ABI on every 64-bit unix
    // target we support.
    unsafe {
        ffi::signal(ffi::SIGINT, on_signal as *const () as usize);
        ffi::signal(ffi::SIGTERM, on_signal as *const () as usize);
    }
}

/// Whether a shutdown signal has arrived.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Resets the flag (tests only — a real node exits after one interrupt).
#[cfg(test)]
pub fn reset() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn a_raised_signal_sets_the_flag() {
        install();
        reset();
        assert!(!interrupted());
        // Raise SIGTERM at ourselves through the installed handler.
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // SAFETY: `raise(2)` with a signal we installed a handler for.
        unsafe {
            raise(ffi::SIGTERM);
        }
        assert!(interrupted());
        reset();
    }
}
