//! Node configuration and its CLI surface.

use std::path::PathBuf;
use std::time::Duration;
use tibpre_client::{level_from_name, level_name, NodeRole};
use tibpre_pairing::SecurityLevel;
use tibpre_wire::DEFAULT_MAX_FRAME;

/// Everything a node needs to boot, with CLI parsing for `tibpre-node`.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Which service this node runs.
    pub role: NodeRole,
    /// The listen address (`127.0.0.1:0` binds an ephemeral port).
    pub addr: String,
    /// The pairing security level; clients must be configured identically.
    pub level: SecurityLevel,
    /// Durable state directory for store/proxy roles (`None` = in-memory).
    pub data_dir: Option<PathBuf>,
    /// The store node a proxy reads records from (required for the proxy
    /// role).
    pub store_addr: Option<String>,
    /// The primary store this node replicates from (store role only).
    /// When set the node boots as an in-memory read replica: it bootstraps
    /// from the primary's newest snapshot generations, tails WAL segments,
    /// serves reads, and rejects writes until promoted.
    pub replica_of: Option<String>,
    /// Connection-pool size for the proxy's store client.
    pub store_connections: usize,
    /// The KGC domain label (KGC role).
    pub kgc_label: String,
    /// The node/store display name.
    pub name: String,
    /// Maximum time a connection may sit idle between frames.
    pub idle_timeout: Duration,
    /// Maximum time reading the rest of a frame may take once its first
    /// byte has arrived.
    pub read_timeout: Duration,
    /// Write timeout per response.
    pub write_timeout: Duration,
    /// Maximum accepted frame size, both directions.
    pub max_frame: usize,
    /// Maximum requests per scheduler batch (proxy role).  `1` disables
    /// the cross-request batch scheduler entirely: every request is
    /// handled inline on its connection thread, the pre-scheduler
    /// behaviour.
    pub batch_max: usize,
    /// How long a *partially* filled batch may linger waiting for more
    /// requests.  A request arriving at an idle scheduler always
    /// dispatches immediately, so this bounds added latency under load
    /// only.
    pub batch_window: Duration,
}

impl NodeConfig {
    /// Defaults for one role: loopback ephemeral port, toy parameters (the
    /// in-process test/bench configuration — production deployments pass
    /// `--level`).
    pub fn new(role: NodeRole) -> Self {
        NodeConfig {
            role,
            addr: "127.0.0.1:0".to_string(),
            level: SecurityLevel::Toy,
            data_dir: None,
            store_addr: None,
            replica_of: None,
            store_connections: 4,
            kgc_label: "tibpre-kgc".to_string(),
            name: format!("tibpre-{}", role.name()),
            idle_timeout: Duration::from_secs(300),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_frame: DEFAULT_MAX_FRAME,
            batch_max: 16,
            batch_window: Duration::from_micros(200),
        }
    }

    /// Parses `tibpre-node` CLI arguments (without the program name).
    ///
    /// `--role kgc|proxy|store` is mandatory; everything else has a
    /// default.  Returns a human-readable message on any unknown or
    /// malformed argument.
    pub fn parse_args(args: &[String]) -> Result<Self, String> {
        let mut role = None;
        let mut rest: Vec<(String, String)> = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = it
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .clone();
            if flag == "--role" {
                role = Some(
                    NodeRole::from_name(&value)
                        .ok_or_else(|| format!("unknown role {value} (kgc|proxy|store)"))?,
                );
            } else {
                rest.push((flag.clone(), value));
            }
        }
        let role = role.ok_or("missing --role kgc|proxy|store")?;
        let mut config = NodeConfig::new(role);
        for (flag, value) in rest {
            match flag.as_str() {
                "--addr" => config.addr = value,
                "--level" => {
                    config.level = level_from_name(&value).ok_or_else(|| {
                        format!("unknown level {value} (toy|low80|medium112|high128)")
                    })?;
                }
                "--data-dir" => config.data_dir = Some(PathBuf::from(value)),
                "--store" => config.store_addr = Some(value),
                "--replica-of" => config.replica_of = Some(value),
                "--store-connections" => {
                    config.store_connections = value
                        .parse()
                        .map_err(|_| format!("bad --store-connections {value}"))?;
                }
                "--kgc-label" => config.kgc_label = value,
                "--name" => config.name = value,
                "--idle-timeout-secs" => {
                    config.idle_timeout = Duration::from_secs(
                        value
                            .parse()
                            .map_err(|_| format!("bad --idle-timeout-secs {value}"))?,
                    );
                }
                "--read-timeout-secs" => {
                    config.read_timeout = Duration::from_secs(
                        value
                            .parse()
                            .map_err(|_| format!("bad --read-timeout-secs {value}"))?,
                    );
                }
                "--write-timeout-secs" => {
                    config.write_timeout = Duration::from_secs(
                        value
                            .parse()
                            .map_err(|_| format!("bad --write-timeout-secs {value}"))?,
                    );
                }
                "--max-frame" => {
                    config.max_frame = value
                        .parse()
                        .map_err(|_| format!("bad --max-frame {value}"))?;
                }
                "--batch-max" => {
                    config.batch_max = value
                        .parse()
                        .map_err(|_| format!("bad --batch-max {value}"))?;
                    if config.batch_max == 0 {
                        return Err("--batch-max must be at least 1".to_string());
                    }
                }
                "--batch-window-us" => {
                    config.batch_window = Duration::from_micros(
                        value
                            .parse()
                            .map_err(|_| format!("bad --batch-window-us {value}"))?,
                    );
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if config.role == NodeRole::Proxy && config.store_addr.is_none() {
            return Err(
                "the proxy role needs --store <addr> (the store node it reads records \
                        from)"
                    .to_string(),
            );
        }
        if config.replica_of.is_some() {
            if config.role != NodeRole::Store {
                return Err("--replica-of applies to the store role only".to_string());
            }
            if config.data_dir.is_some() {
                return Err(
                    "--replica-of conflicts with --data-dir: a read replica keeps its \
                     state in memory and rebuilds from the primary on boot"
                        .to_string(),
                );
            }
        }
        Ok(config)
    }

    /// The configured level's wire/CLI name.
    pub fn level_name(&self) -> &'static str {
        level_name(self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<NodeConfig, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        NodeConfig::parse_args(&owned)
    }

    #[test]
    fn parses_a_full_store_invocation() {
        let config = parse(&[
            "--role",
            "store",
            "--addr",
            "0.0.0.0:7070",
            "--level",
            "low80",
            "--data-dir",
            "/tmp/phr",
            "--name",
            "hospital-db",
            "--max-frame",
            "1048576",
        ])
        .unwrap();
        assert_eq!(config.role, NodeRole::Store);
        assert_eq!(config.addr, "0.0.0.0:7070");
        assert_eq!(config.level, SecurityLevel::Low80);
        assert_eq!(
            config.data_dir.as_deref(),
            Some(std::path::Path::new("/tmp/phr"))
        );
        assert_eq!(config.name, "hospital-db");
        assert_eq!(config.max_frame, 1_048_576);
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse(&[]).unwrap_err().contains("--role"));
        assert!(parse(&["--role", "oracle"])
            .unwrap_err()
            .contains("unknown role"));
        assert!(parse(&["--role", "kgc", "--level", "strong"])
            .unwrap_err()
            .contains("unknown level"));
        assert!(parse(&["--role", "kgc", "--addr"])
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&["--role", "kgc", "--frobnicate", "7"])
            .unwrap_err()
            .contains("unknown flag"));
        // A proxy without a store node is a misconfiguration at parse time.
        assert!(parse(&["--role", "proxy"]).unwrap_err().contains("--store"));
        parse(&["--role", "proxy", "--store", "127.0.0.1:7071"]).unwrap();
    }

    #[test]
    fn scheduler_knobs_parse_and_validate() {
        let config = parse(&[
            "--role",
            "proxy",
            "--store",
            "127.0.0.1:7071",
            "--batch-max",
            "64",
            "--batch-window-us",
            "500",
        ])
        .unwrap();
        assert_eq!(config.batch_max, 64);
        assert_eq!(config.batch_window, Duration::from_micros(500));
        // batch_max 1 is the scheduler-off configuration, 0 is nonsense.
        assert_eq!(
            parse(&["--role", "kgc", "--batch-max", "1"])
                .unwrap()
                .batch_max,
            1
        );
        assert!(parse(&["--role", "kgc", "--batch-max", "0"])
            .unwrap_err()
            .contains("--batch-max"));
    }

    #[test]
    fn replica_flags_are_store_only_and_in_memory() {
        let config = parse(&["--role", "store", "--replica-of", "127.0.0.1:7071"]).unwrap();
        assert_eq!(config.replica_of.as_deref(), Some("127.0.0.1:7071"));
        assert!(parse(&["--role", "kgc", "--replica-of", "127.0.0.1:7071"])
            .unwrap_err()
            .contains("store role only"));
        assert!(parse(&[
            "--role",
            "store",
            "--replica-of",
            "127.0.0.1:7071",
            "--data-dir",
            "/tmp/phr",
        ])
        .unwrap_err()
        .contains("conflicts with --data-dir"));
    }
}
