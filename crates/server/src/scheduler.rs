//! The cross-request batch scheduler: the middle stage of the node's
//! reader → scheduler → writer pipeline.
//!
//! Connection readers decode frames and submit pairing-heavy requests here
//! as [`BatchEntry`]s; one scheduler thread drains up to `batch_max`
//! entries per tick and executes them as a single batch (the proxy's
//! [`disclose_batch`](tibpre_phr::ProxyService::disclose_batch) path),
//! filling each entry's [`ResponseSlot`].  The connection's writer thread
//! consumes slots strictly in submission order, so per-connection response
//! order is preserved no matter how the scheduler interleaves work across
//! connections.
//!
//! The drain window is adaptive, Nagle-style: a request that arrives at an
//! *idle* scheduler dispatches immediately — a lone client pays no added
//! latency — while a queue that already holds several requests lingers up
//! to `batch_window` to let the batch fill toward `batch_max` under load.
//!
//! Shutdown is drain-correct by construction: [`Scheduler::run`] keeps
//! executing while entries remain and exits only once it is both stopped
//! *and* empty, so every submitted request is answered; a submission that
//! loses the race against [`Scheduler::stop`] is handed back to the caller
//! to answer inline.

use crate::metrics;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tibpre_client::{RemoteError, Request, Response};

/// A single-use response mailbox: filled exactly once by whoever executes
/// the request, consumed by the connection's writer thread.
pub(crate) struct ResponseSlot {
    state: Mutex<Option<Response>>,
    ready: Condvar,
}

/// Locks a slot's state, recovering from a poisoned mutex — a filler can
/// only poison the lock by panicking mid-store, and the slot's `Option`
/// state is valid in either half of that race.
fn lock_state(slot: &ResponseSlot) -> MutexGuard<'_, Option<Response>> {
    slot.state
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

impl ResponseSlot {
    /// A slot awaiting its response.
    pub(crate) fn empty() -> Arc<Self> {
        Arc::new(ResponseSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// A slot born filled (inline fast-path responses).
    pub(crate) fn filled(response: Response) -> Arc<Self> {
        Arc::new(ResponseSlot {
            state: Mutex::new(Some(response)),
            ready: Condvar::new(),
        })
    }

    /// Fills the slot and wakes its consumer.
    pub(crate) fn fill(&self, response: Response) {
        *lock_state(self) = Some(response);
        self.ready.notify_all();
    }

    /// Blocks until the slot is filled and takes the response.
    pub(crate) fn wait_take(&self) -> Response {
        let mut state = lock_state(self);
        loop {
            if let Some(response) = state.take() {
                return response;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|poison| poison.into_inner());
        }
    }

    /// Takes the response if it is already there (the writer's coalescing
    /// peek — never blocks).
    pub(crate) fn try_take(&self) -> Option<Response> {
        lock_state(self).take()
    }
}

/// One queued request and the slot its response goes to.
pub(crate) struct BatchEntry {
    /// The decoded request.
    pub(crate) request: Request,
    /// Where its response must land.
    pub(crate) slot: Arc<ResponseSlot>,
}

struct SchedState {
    queue: VecDeque<BatchEntry>,
    stopped: bool,
}

/// The submission queue and its drain policy.
pub(crate) struct Scheduler {
    state: Mutex<SchedState>,
    nonempty: Condvar,
    batch_max: usize,
    batch_window: Duration,
}

impl Scheduler {
    pub(crate) fn new(batch_max: usize, batch_window: Duration) -> Arc<Self> {
        Arc::new(Scheduler {
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                stopped: false,
            }),
            nonempty: Condvar::new(),
            batch_max: batch_max.max(1),
            batch_window,
        })
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Queues one entry for the next batch.  After [`Scheduler::stop`] the
    /// entry is handed back — the caller answers it inline so no request
    /// is ever silently dropped in the shutdown race.
    pub(crate) fn submit(&self, entry: BatchEntry) -> Result<(), BatchEntry> {
        let mut state = self.lock();
        if state.stopped {
            return Err(entry);
        }
        state.queue.push_back(entry);
        metrics::note_queue_depth(state.queue.len());
        drop(state);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Stops the scheduler: new submissions bounce, and [`Scheduler::run`]
    /// exits once the queue is drained.
    pub(crate) fn stop(&self) {
        self.lock().stopped = true;
        self.nonempty.notify_all();
    }

    /// The scheduler loop: drains batches and executes them through `exec`
    /// until stopped *and* empty.  `exec` must return exactly one response
    /// per request, in request order; a short return fills the remainder
    /// with internal errors rather than leaving a writer blocked forever.
    pub(crate) fn run(&self, exec: impl Fn(Vec<Request>) -> Vec<Response>) {
        loop {
            let mut state = self.lock();
            while state.queue.is_empty() && !state.stopped {
                state = self
                    .nonempty
                    .wait(state)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
            if state.queue.is_empty() {
                return; // stopped and drained
            }
            let mut batch: Vec<BatchEntry> = Vec::new();
            let drain = |state: &mut SchedState, batch: &mut Vec<BatchEntry>| {
                while batch.len() < self.batch_max {
                    match state.queue.pop_front() {
                        Some(entry) => batch.push(entry),
                        None => break,
                    }
                }
            };
            drain(&mut state, &mut batch);
            // Adaptive window: a lone request (idle scheduler) dispatches
            // immediately; a partial batch under load lingers briefly so
            // concurrent submissions coalesce instead of each paying a
            // full pairing-path dispatch.
            if batch.len() > 1 && batch.len() < self.batch_max && !state.stopped {
                let deadline = Instant::now() + self.batch_window;
                loop {
                    let now = Instant::now();
                    if now >= deadline || batch.len() >= self.batch_max || state.stopped {
                        break;
                    }
                    let (guard, timeout) = self
                        .nonempty
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|poison| poison.into_inner());
                    state = guard;
                    drain(&mut state, &mut batch);
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            metrics::note_queue_depth(state.queue.len());
            drop(state);

            metrics::note_batch(batch.len());
            let (requests, slots): (Vec<_>, Vec<_>) = batch
                .into_iter()
                .map(|entry| (entry.request, entry.slot))
                .unzip();
            let mut responses = exec(requests).into_iter();
            for slot in &slots {
                slot.fill(responses.next().unwrap_or_else(|| {
                    Response::Error(RemoteError::Internal(
                        "batch executor returned too few responses".to_string(),
                    ))
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_blocks_until_filled_across_threads() {
        let slot = ResponseSlot::empty();
        assert!(slot.try_take().is_none());
        let filler = Arc::clone(&slot);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            filler.fill(Response::Ok);
        });
        assert!(matches!(slot.wait_take(), Response::Ok));
        handle.join().unwrap();
        // Taken means gone.
        assert!(slot.try_take().is_none());
    }

    #[test]
    fn batches_respect_batch_max_and_answer_everything() {
        let sched = Scheduler::new(3, Duration::from_micros(200));
        let slots: Vec<_> = (0..7).map(|_| ResponseSlot::empty()).collect();
        for slot in &slots {
            sched
                .submit(BatchEntry {
                    request: Request::Ping,
                    slot: Arc::clone(slot),
                })
                .unwrap_or_else(|_| panic!("fresh scheduler rejected a submission"));
        }
        let runner = Arc::clone(&sched);
        let handle = std::thread::spawn(move || {
            runner.run(|requests| {
                assert!(requests.len() <= 3, "batch exceeded batch_max");
                requests
                    .iter()
                    .map(|_| Response::Count(requests.len() as u64))
                    .collect()
            });
        });
        // Every slot is answered with its batch's size; sizes never exceed
        // the cap and sum to the submission count.
        let sizes: Vec<u64> = slots
            .iter()
            .map(|slot| match slot.wait_take() {
                Response::Count(n) => n,
                other => panic!("wrong response: {other:?}"),
            })
            .collect();
        assert_eq!(sizes.iter().filter(|&&n| n == 0).count(), 0);
        assert!(sizes.iter().all(|&n| n <= 3));
        sched.stop();
        handle.join().unwrap();
    }

    #[test]
    fn stop_drains_the_queue_then_exits_and_bounces_new_submissions() {
        let sched = Scheduler::new(8, Duration::ZERO);
        let queued: Vec<_> = (0..5).map(|_| ResponseSlot::empty()).collect();
        for slot in &queued {
            sched
                .submit(BatchEntry {
                    request: Request::Ping,
                    slot: Arc::clone(slot),
                })
                .unwrap_or_else(|_| panic!("fresh scheduler rejected a submission"));
        }
        // Stop BEFORE the runner starts: the queued entries must still be
        // answered (graceful drain), and only then may run() return.
        sched.stop();
        let runner = Arc::clone(&sched);
        let handle = std::thread::spawn(move || {
            runner.run(|requests| requests.iter().map(|_| Response::Ok).collect());
        });
        for slot in &queued {
            assert!(matches!(slot.wait_take(), Response::Ok));
        }
        handle.join().unwrap();
        // A post-stop submission comes straight back for inline handling.
        let late = ResponseSlot::empty();
        let bounced = sched.submit(BatchEntry {
            request: Request::Ping,
            slot: late,
        });
        assert!(bounced.is_err());
    }

    #[test]
    fn short_executor_returns_fill_internal_errors_not_hangs() {
        let sched = Scheduler::new(4, Duration::ZERO);
        let slots: Vec<_> = (0..2).map(|_| ResponseSlot::empty()).collect();
        for slot in &slots {
            sched
                .submit(BatchEntry {
                    request: Request::Ping,
                    slot: Arc::clone(slot),
                })
                .unwrap_or_else(|_| panic!("fresh scheduler rejected a submission"));
        }
        sched.stop();
        let runner = Arc::clone(&sched);
        let handle = std::thread::spawn(move || {
            runner.run(|_| Vec::new()); // hostile executor: zero responses
        });
        for slot in &slots {
            assert!(matches!(
                slot.wait_take(),
                Response::Error(RemoteError::Internal(_))
            ));
        }
        handle.join().unwrap();
    }
}
