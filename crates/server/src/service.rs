//! Request dispatch for the three node roles.
//!
//! [`RoleService::handle`] is the single seam between the wire protocol and
//! the in-process scheme objects: it maps each [`Request`] onto the
//! [`Kgc`] / [`EncryptedPhrStore`] / [`ProxyService`] call it names, and
//! maps every failure — including a panic in the handler — onto a
//! [`Response::Error`], so a connection thread can never poison the node.

use crate::replica::ReplicaControl;
use parking_lot::RwLock;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use tibpre_client::{NodeRole, RemoteError, Request, Response};
use tibpre_ibe::Kgc;
use tibpre_phr::{EncryptedPhrStore, ProxyService};

/// The role-specific state behind a node's listener.
pub enum RoleService {
    /// Key generation centre: answers `PublicParams` and `Extract`.
    /// Boxed: the KGC's cached parameter tables dwarf the other variants.
    Kgc(Box<Kgc>),
    /// Record store: CRUD, listing, audit, and durability control.
    Store {
        /// The record store itself (durable primary or in-memory replica).
        store: Arc<EncryptedPhrStore>,
        /// Present when this store is a read replica: holds the write gate
        /// and the per-shard applied offsets.
        replica: Option<Arc<ReplicaControl>>,
    },
    /// Re-encryption proxy: grant/revoke and disclosure.  Grants mutate the
    /// key table, so the service sits behind an `RwLock`; disclosures (the
    /// hot path) take the read side and run concurrently.
    Proxy(Box<RwLock<ProxyService>>),
}

impl RoleService {
    /// The role this service answers for.
    pub fn role(&self) -> NodeRole {
        match self {
            RoleService::Kgc(_) => NodeRole::Kgc,
            RoleService::Store { .. } => NodeRole::Store,
            RoleService::Proxy(_) => NodeRole::Proxy,
        }
    }

    /// The store, if this node holds one (used by the drain path to sync).
    pub fn store(&self) -> Option<&Arc<EncryptedPhrStore>> {
        match self {
            RoleService::Store { store, .. } => Some(store),
            _ => None,
        }
    }

    /// The replica control state, if this node is a read replica.
    pub fn replica(&self) -> Option<&Arc<ReplicaControl>> {
        match self {
            RoleService::Store {
                replica: Some(control),
                ..
            } => Some(control),
            _ => None,
        }
    }

    /// Whether this node currently accepts writes: anything but an
    /// unpromoted replica.
    pub fn writable(&self) -> bool {
        self.replica().is_none_or(|control| control.writable())
    }

    /// Handles one request.  Never panics: a panicking handler is reported
    /// as [`RemoteError::Internal`] and the connection stays usable.
    pub fn handle(&self, request: Request) -> Response {
        let role = self.role();
        catch_unwind(AssertUnwindSafe(|| self.dispatch(request))).unwrap_or_else(|_| {
            Response::Error(RemoteError::Internal(format!(
                "request handler panicked on the {} node",
                role.name()
            )))
        })
    }

    fn dispatch(&self, request: Request) -> Response {
        match self {
            RoleService::Kgc(kgc) => Self::dispatch_kgc(kgc, request),
            RoleService::Store { store, replica } => {
                Self::dispatch_store(store, replica.as_deref(), request)
            }
            RoleService::Proxy(proxy) => Self::dispatch_proxy(proxy, request),
        }
    }

    fn wrong_role(role: NodeRole, request: &Request) -> Response {
        Response::Error(RemoteError::WrongRole(format!(
            "{} is not served by the {} role",
            request.kind(),
            role.name()
        )))
    }

    fn dispatch_kgc(kgc: &Kgc, request: Request) -> Response {
        match request {
            Request::PublicParams => Response::PublicParams(Box::new(kgc.public_params().clone())),
            Request::Extract { identity } => Response::PrivateKey(Box::new(kgc.extract(&identity))),
            other => Self::wrong_role(NodeRole::Kgc, &other),
        }
    }

    /// Whether a request mutates store state (gated on an unpromoted
    /// replica).
    fn mutates_store(request: &Request) -> bool {
        matches!(
            request,
            Request::PutRecord { .. }
                | Request::DeleteRecord { .. }
                | Request::LogDisclosure { .. }
                | Request::LogPolicyChange { .. }
        )
    }

    fn dispatch_store(
        store: &EncryptedPhrStore,
        replica: Option<&ReplicaControl>,
        request: Request,
    ) -> Response {
        if let Some(control) = replica {
            if !control.writable() && Self::mutates_store(&request) {
                return Response::Error(RemoteError::WrongRole(
                    "read replica (writes go to the primary; promote to accept them here)"
                        .to_string(),
                ));
            }
        }
        match request {
            Request::ReplicationStatus => Response::ReplicaStatus {
                positions: match replica {
                    Some(control) => control.positions(),
                    None => store.replication_positions(),
                },
                writable: replica.is_none_or(|control| control.writable()),
            },
            Request::Promote => match replica {
                Some(control) => {
                    control.promote();
                    Response::Ok
                }
                None => Response::Error(RemoteError::BadRequest(
                    "this store is not a replica; there is nothing to promote".to_string(),
                )),
            },
            Request::PutRecord {
                patient,
                category,
                title,
                ciphertext,
            } => Response::RecordId(store.put(&patient, &category, &title, *ciphertext)),
            Request::GetRecord { id } => match store.get(id) {
                Ok(record) => Response::Record(Box::new((*record).clone())),
                Err(e) => Response::Error(RemoteError::from_phr(&e)),
            },
            Request::DeleteRecord { id, requester } => match store.delete(id, &requester) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(RemoteError::from_phr(&e)),
            },
            Request::ListRecords { patient, category } => Response::RecordIds(match category {
                Some(category) => store.list_for_patient_category(&patient, &category),
                None => store.list_for_patient(&patient),
            }),
            Request::RecordCount => Response::Count(store.record_count() as u64),
            Request::Sync => match store.sync() {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(RemoteError::from_phr(&e)),
            },
            Request::AuditSnapshot => Response::AuditEvents(
                store
                    .audit_snapshot()
                    .iter()
                    .map(|event| (**event).clone())
                    .collect(),
            ),
            Request::LogDisclosure {
                id,
                requester,
                granted,
            } => {
                store.log_disclosure(id, &requester, granted);
                Response::Ok
            }
            Request::LogPolicyChange {
                patient,
                category,
                grantee,
                granted,
            } => {
                store.log_policy_change(&patient, &category, &grantee, granted);
                Response::Ok
            }
            other => Self::wrong_role(NodeRole::Store, &other),
        }
    }

    fn dispatch_proxy(proxy: &RwLock<ProxyService>, request: Request) -> Response {
        match request {
            Request::InstallKey { key } => {
                proxy.write().install_key(*key);
                Response::Ok
            }
            Request::RevokeKey {
                patient,
                category,
                grantee,
            } => Response::Bool(proxy.write().revoke_key(&patient, &category, &grantee)),
            Request::HasGrant {
                patient,
                category,
                grantee,
            } => Response::Bool(proxy.read().has_grant(&patient, &category, &grantee)),
            Request::KeyCount => Response::Count(proxy.read().key_count() as u64),
            Request::Disclose {
                patient,
                id,
                requester,
            } => match proxy.read().disclose(&patient, id, &requester) {
                Ok(bundle) => Response::Bundle(Box::new(bundle)),
                Err(e) => Response::Error(RemoteError::from_phr(&e)),
            },
            Request::DiscloseCategory {
                patient,
                category,
                requester,
            } => match proxy
                .read()
                .disclose_category(&patient, &category, &requester)
            {
                Ok(bundles) => Response::Bundles(bundles),
                Err(e) => Response::Error(RemoteError::from_phr(&e)),
            },
            Request::AuditSnapshot => Response::AuditEvents(proxy.read().audit_snapshot()),
            other => Self::wrong_role(NodeRole::Proxy, &other),
        }
    }
}
