//! Request dispatch for the three node roles.
//!
//! [`RoleService::handle`] is the single seam between the wire protocol and
//! the in-process scheme objects: it maps each [`Request`] onto the
//! [`Kgc`] / [`EncryptedPhrStore`] / [`ProxyService`] call it names, and
//! maps every failure — including a panic in the handler — onto a
//! [`Response::Error`], so a connection thread can never poison the node.

use crate::metrics;
use crate::replica::ReplicaControl;
use parking_lot::RwLock;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use tibpre_client::{NodeRole, RemoteError, Request, Response};
use tibpre_ibe::{Identity, Kgc};
use tibpre_phr::{EncryptedPhrStore, ProxyService, RecordId};

/// The role-specific state behind a node's listener.
pub enum RoleService {
    /// Key generation centre: answers `PublicParams` and `Extract`.
    /// Boxed: the KGC's cached parameter tables dwarf the other variants.
    Kgc(Box<Kgc>),
    /// Record store: CRUD, listing, audit, and durability control.
    Store {
        /// The record store itself (durable primary or in-memory replica).
        store: Arc<EncryptedPhrStore>,
        /// Present when this store is a read replica: holds the write gate
        /// and the per-shard applied offsets.
        replica: Option<Arc<ReplicaControl>>,
    },
    /// Re-encryption proxy: grant/revoke and disclosure.  Grants mutate the
    /// key table, so the service sits behind an `RwLock`; disclosures (the
    /// hot path) take the read side and run concurrently.
    Proxy(Box<RwLock<ProxyService>>),
}

impl RoleService {
    /// The role this service answers for.
    pub fn role(&self) -> NodeRole {
        match self {
            RoleService::Kgc(_) => NodeRole::Kgc,
            RoleService::Store { .. } => NodeRole::Store,
            RoleService::Proxy(_) => NodeRole::Proxy,
        }
    }

    /// The store, if this node holds one (used by the drain path to sync).
    pub fn store(&self) -> Option<&Arc<EncryptedPhrStore>> {
        match self {
            RoleService::Store { store, .. } => Some(store),
            _ => None,
        }
    }

    /// The replica control state, if this node is a read replica.
    pub fn replica(&self) -> Option<&Arc<ReplicaControl>> {
        match self {
            RoleService::Store {
                replica: Some(control),
                ..
            } => Some(control),
            _ => None,
        }
    }

    /// Whether this node currently accepts writes: anything but an
    /// unpromoted replica.
    pub fn writable(&self) -> bool {
        self.replica().is_none_or(|control| control.writable())
    }

    /// Handles one request.  Never panics: a panicking handler is reported
    /// as [`RemoteError::Internal`] and the connection stays usable.
    pub fn handle(&self, request: Request) -> Response {
        let role = self.role();
        catch_unwind(AssertUnwindSafe(|| self.dispatch(request))).unwrap_or_else(|_| {
            Response::Error(RemoteError::Internal(format!(
                "request handler panicked on the {} node",
                role.name()
            )))
        })
    }

    /// Handles a scheduler batch of independent requests: exactly one
    /// response per request, in request order.  On a proxy, `Disclose`
    /// requests collapse into one
    /// [`ProxyService::disclose_batch`] call (shared key lookups, batched
    /// pairing work, group-committed audit writes); everything else
    /// dispatches per item.  Never panics, like [`Self::handle`].
    pub fn handle_batch(&self, requests: Vec<Request>) -> Vec<Response> {
        let role = self.role();
        let len = requests.len();
        catch_unwind(AssertUnwindSafe(|| self.dispatch_batch(requests))).unwrap_or_else(|_| {
            vec![
                Response::Error(RemoteError::Internal(format!(
                    "batch handler panicked on the {} node",
                    role.name()
                )));
                len
            ]
        })
    }

    fn dispatch_batch(&self, requests: Vec<Request>) -> Vec<Response> {
        let RoleService::Proxy(proxy) = self else {
            return requests.into_iter().map(|r| self.dispatch(r)).collect();
        };
        /// Where each batch position gets its response from.
        enum Plan {
            /// The n-th entry of the collapsed `disclose_batch` call.
            Disclose,
            /// Dispatched individually.
            Inline(Request),
        }
        let mut items: Vec<(Identity, RecordId, Identity)> = Vec::new();
        let mut plan: Vec<Plan> = Vec::with_capacity(requests.len());
        for request in requests {
            match request {
                Request::Disclose {
                    patient,
                    id,
                    requester,
                } => {
                    items.push((patient, id, requester));
                    plan.push(Plan::Disclose);
                }
                other => plan.push(Plan::Inline(other)),
            }
        }
        // The read guard spans only the collapsed call: inline entries may
        // need the write side (and dispatch takes its own locks).
        let mut disclosed = if items.is_empty() {
            Vec::new()
        } else {
            proxy.read().disclose_batch(&items)
        }
        .into_iter();
        plan.into_iter()
            .map(|entry| match entry {
                Plan::Disclose => match disclosed.next() {
                    Some(Ok(bundle)) => Response::Bundle(Box::new(bundle)),
                    Some(Err(e)) => Response::Error(RemoteError::from_phr(&e)),
                    None => Response::Error(RemoteError::Internal(
                        "disclose batch returned too few results".to_string(),
                    )),
                },
                Plan::Inline(request) => self.dispatch(request),
            })
            .collect()
    }

    fn dispatch(&self, request: Request) -> Response {
        // Scheduler counters are answered by every role (a node without a
        // scheduler reports zeros), so the request is handled before the
        // role match.
        if matches!(request, Request::SchedStats) {
            return Response::SchedStats(metrics::sched_snapshot());
        }
        match self {
            RoleService::Kgc(kgc) => Self::dispatch_kgc(kgc, request),
            RoleService::Store { store, replica } => {
                Self::dispatch_store(store, replica.as_deref(), request)
            }
            RoleService::Proxy(proxy) => Self::dispatch_proxy(proxy, request),
        }
    }

    fn wrong_role(role: NodeRole, request: &Request) -> Response {
        Response::Error(RemoteError::WrongRole(format!(
            "{} is not served by the {} role",
            request.kind(),
            role.name()
        )))
    }

    fn dispatch_kgc(kgc: &Kgc, request: Request) -> Response {
        match request {
            Request::PublicParams => Response::PublicParams(Box::new(kgc.public_params().clone())),
            Request::Extract { identity } => Response::PrivateKey(Box::new(kgc.extract(&identity))),
            other => Self::wrong_role(NodeRole::Kgc, &other),
        }
    }

    /// Whether a request mutates store state (gated on an unpromoted
    /// replica).
    fn mutates_store(request: &Request) -> bool {
        matches!(
            request,
            Request::PutRecord { .. }
                | Request::DeleteRecord { .. }
                | Request::LogDisclosure { .. }
                | Request::LogPolicyChange { .. }
        )
    }

    fn dispatch_store(
        store: &EncryptedPhrStore,
        replica: Option<&ReplicaControl>,
        request: Request,
    ) -> Response {
        if let Some(control) = replica {
            if !control.writable() && Self::mutates_store(&request) {
                return Response::Error(RemoteError::WrongRole(
                    "read replica (writes go to the primary; promote to accept them here)"
                        .to_string(),
                ));
            }
        }
        match request {
            Request::ReplicationStatus => Response::ReplicaStatus {
                positions: match replica {
                    Some(control) => control.positions(),
                    None => store.replication_positions(),
                },
                writable: replica.is_none_or(|control| control.writable()),
            },
            Request::Promote => match replica {
                Some(control) => {
                    control.promote();
                    Response::Ok
                }
                None => Response::Error(RemoteError::BadRequest(
                    "this store is not a replica; there is nothing to promote".to_string(),
                )),
            },
            Request::PutRecord {
                patient,
                category,
                title,
                ciphertext,
            } => Response::RecordId(store.put(&patient, &category, &title, *ciphertext)),
            Request::GetRecord { id } => match store.get(id) {
                Ok(record) => Response::Record(Box::new((*record).clone())),
                Err(e) => Response::Error(RemoteError::from_phr(&e)),
            },
            Request::DeleteRecord { id, requester } => match store.delete(id, &requester) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(RemoteError::from_phr(&e)),
            },
            Request::ListRecords { patient, category } => Response::RecordIds(match category {
                Some(category) => store.list_for_patient_category(&patient, &category),
                None => store.list_for_patient(&patient),
            }),
            Request::RecordCount => Response::Count(store.record_count() as u64),
            Request::Sync => match store.sync() {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(RemoteError::from_phr(&e)),
            },
            Request::AuditSnapshot => Response::AuditEvents(
                store
                    .audit_snapshot()
                    .iter()
                    .map(|event| (**event).clone())
                    .collect(),
            ),
            Request::LogDisclosure {
                id,
                requester,
                granted,
            } => {
                store.log_disclosure(id, &requester, granted);
                Response::Ok
            }
            Request::LogPolicyChange {
                patient,
                category,
                grantee,
                granted,
            } => {
                store.log_policy_change(&patient, &category, &grantee, granted);
                Response::Ok
            }
            other => Self::wrong_role(NodeRole::Store, &other),
        }
    }

    fn dispatch_proxy(proxy: &RwLock<ProxyService>, request: Request) -> Response {
        match request {
            Request::InstallKey { key } => {
                proxy.write().install_key(*key);
                Response::Ok
            }
            Request::RevokeKey {
                patient,
                category,
                grantee,
            } => Response::Bool(proxy.write().revoke_key(&patient, &category, &grantee)),
            Request::HasGrant {
                patient,
                category,
                grantee,
            } => Response::Bool(proxy.read().has_grant(&patient, &category, &grantee)),
            Request::KeyCount => Response::Count(proxy.read().key_count() as u64),
            Request::Disclose {
                patient,
                id,
                requester,
            } => match proxy.read().disclose(&patient, id, &requester) {
                Ok(bundle) => Response::Bundle(Box::new(bundle)),
                Err(e) => Response::Error(RemoteError::from_phr(&e)),
            },
            Request::DiscloseCategory {
                patient,
                category,
                requester,
            } => match proxy
                .read()
                .disclose_category(&patient, &category, &requester)
            {
                Ok(bundles) => Response::Bundles(bundles),
                Err(e) => Response::Error(RemoteError::from_phr(&e)),
            },
            Request::AuditSnapshot => Response::AuditEvents(proxy.read().audit_snapshot()),
            other => Self::wrong_role(NodeRole::Proxy, &other),
        }
    }
}
