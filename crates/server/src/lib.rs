//! # tibpre-server — the TIB-PRE network node
//!
//! Puts a socket in front of the scheme: one binary (`tibpre-node`) serving
//! any of the three deployment roles of Ibraimi et al. over a hand-rolled
//! blocking TCP listener —
//!
//! * **kgc** — the key generation centre ([`tibpre_ibe::Kgc`]),
//! * **store** — the durable encrypted record store
//!   ([`tibpre_phr::EncryptedPhrStore`]),
//! * **proxy** — the semi-trusted re-encryption proxy
//!   ([`tibpre_phr::ProxyService`]), reading records from a store node via
//!   [`tibpre_client::RemoteStore`].
//!
//! The protocol (typed [`tibpre_client::Request`] /
//! [`tibpre_client::Response`] frames under the versioned wire envelope)
//! lives in `tibpre-client`; this crate adds the listener, per-role
//! dispatch, graceful shutdown, and the `tibpre-load` load generator.

#![deny(unsafe_code)] // signal.rs carves out its own file-scoped allow
#![deny(missing_docs)]

pub mod config;
pub mod load;
pub mod metrics;
pub mod node;
pub mod replica;
mod scheduler;
pub mod service;
pub mod signal;

pub use config::NodeConfig;
pub use load::{run_load, LoadConfig, LoadReport};
pub use node::{start, NodeHandle, ServerError};
pub use replica::ReplicaControl;
pub use service::RoleService;
