//! The TCP node: bind, accept, dispatch, drain.
//!
//! One hand-rolled blocking listener per node.  Each accepted connection
//! gets a thread running a strict request → response loop over
//! length-prefixed [`tibpre_wire::framing`] frames.  A connection waits for
//! the *first byte* of a frame in short timeout slices (so it notices
//! shutdown while idle), then switches to the full read timeout for the
//! remainder — a slow-but-live peer mid-frame is never cut off by the idle
//! poll.
//!
//! Shutdown — via [`crate::signal`] or a `Shutdown` frame — stops the
//! accept loop, lets every in-flight request finish, joins the connection
//! threads, `sync()`s the store, and releases the advisory directory lock
//! by dropping it.

use crate::config::NodeConfig;
use crate::service::RoleService;
use crate::signal;
use rand::rngs::OsRng;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tibpre_client::{params_for_level, ClientConfig, NodeRole, RemoteError, Request, Response};
use tibpre_engine::ReEncryptEngine;
use tibpre_ibe::Kgc;
use tibpre_pairing::DecodeCtx;
use tibpre_phr::{Durability, EncryptedPhrStore, ProxyService};
use tibpre_wire::{read_frame, write_frame, FrameError, WireDecode, WireEncode};

/// How long an idle connection sleeps between shutdown-flag checks while
/// waiting for the first byte of the next frame.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(50);

/// Errors booting a node.
#[derive(Debug)]
pub enum ServerError {
    /// Binding or configuring the listener failed.
    Io(io::Error),
    /// Opening the durable store or proxy state failed.
    Phr(tibpre_phr::PhrError),
    /// The proxy could not reach its store node.
    Client(tibpre_client::ClientError),
}

impl core::fmt::Display for ServerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "I/O error: {e}"),
            ServerError::Phr(e) => write!(f, "PHR state error: {e}"),
            ServerError::Client(e) => write!(f, "store connection error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<tibpre_phr::PhrError> for ServerError {
    fn from(e: tibpre_phr::PhrError) -> Self {
        ServerError::Phr(e)
    }
}

impl From<tibpre_client::ClientError> for ServerError {
    fn from(e: tibpre_client::ClientError) -> Self {
        ServerError::Client(e)
    }
}

struct Shared {
    service: RoleService,
    config: NodeConfig,
    ctx: DecodeCtx,
    shutdown: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::interrupted()
    }
}

/// A running node.  Dropping the handle does **not** stop the node; call
/// [`NodeHandle::shutdown`] (or send a `Shutdown` frame / SIGINT) and then
/// [`NodeHandle::wait`].
pub struct NodeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    engine_note: Option<String>,
}

impl NodeHandle {
    /// The bound listen address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `TIBPRE_WORKERS` value the engine rejected at startup, if any
    /// (surfaced in the `tibpre-node` banner).
    pub fn engine_note(&self) -> Option<&str> {
        self.engine_note.as_deref()
    }

    /// Requests a graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the node has drained and released its state.
    pub fn wait(mut self) {
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

/// Boots a node from its configuration and returns once the listener is
/// accepting.
pub fn start(config: NodeConfig) -> Result<NodeHandle, ServerError> {
    let params = params_for_level(config.level);
    let mut engine_note = None;

    let service = match config.role {
        NodeRole::Kgc => RoleService::Kgc(Box::new(Kgc::setup(
            Arc::clone(&params),
            &config.kgc_label,
            &mut OsRng,
        ))),
        NodeRole::Store => {
            let store = match &config.data_dir {
                Some(dir) => EncryptedPhrStore::open(dir, Durability::new(Arc::clone(&params)))?,
                None => EncryptedPhrStore::in_memory_with_params(&config.name, Arc::clone(&params)),
            };
            RoleService::Store(Arc::new(store))
        }
        NodeRole::Proxy => {
            let store_addr = config
                .store_addr
                .clone()
                .expect("NodeConfig::parse_args rejects a proxy without --store");
            let client_config = ClientConfig {
                read_timeout: Some(config.read_timeout.max(Duration::from_secs(30))),
                write_timeout: Some(config.write_timeout.max(Duration::from_secs(30))),
                max_frame: config.max_frame,
            };
            let store = Arc::new(tibpre_client::RemoteStore::connect(
                store_addr.as_str(),
                &params,
                &client_config,
                config.store_connections,
            )?);
            let (engine, rejected) = ReEncryptEngine::from_env_reporting();
            engine_note = rejected;
            let mut proxy = match &config.data_dir {
                Some(dir) => ProxyService::open(
                    &config.name,
                    store,
                    dir,
                    &Durability::new(Arc::clone(&params)),
                )?,
                None => ProxyService::new(&config.name, store),
            };
            proxy.set_engine(engine);
            RoleService::Proxy(Box::new(parking_lot::RwLock::new(proxy)))
        }
    };

    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        service,
        config,
        ctx: DecodeCtx::from(&params),
        shutdown: AtomicBool::new(false),
    });

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("tibpre-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared))?;

    Ok(NodeHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        engine_note,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("tibpre-conn".to_string())
                    .spawn(move || {
                        let _ = serve_connection(stream, conn_shared);
                    });
                if let Ok(handle) = spawned {
                    connections.push(handle);
                }
                connections.retain(|handle| !handle.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                connections.retain(|handle| !handle.is_finished());
                std::thread::sleep(ACCEPT_POLL);
            }
            // A failed accept (e.g. a peer resetting mid-handshake) must
            // not take the listener down.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    drop(listener);
    // Drain: every connection thread observes the shutdown flag within one
    // idle-poll slice (or finishes its in-flight request) and exits.
    for handle in connections {
        let _ = handle.join();
    }
    if let Some(store) = shared.service.store() {
        let _ = store.sync();
    }
}

/// Waits for the first byte of the next frame, polling the shutdown flag
/// between short timeout slices.  Returns `Ok(None)` on clean EOF or
/// shutdown/idle-timeout, `Ok(Some(byte))` once a frame starts.
fn wait_first_byte(stream: &mut TcpStream, shared: &Shared) -> io::Result<Option<u8>> {
    let deadline = Instant::now() + shared.config.idle_timeout;
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let mut first = [0u8; 1];
    loop {
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(first[0])),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() || Instant::now() >= deadline {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Frames and writes one response.  Oversized *responses* are legitimate (a
/// category disclosure can exceed the request cap), so the frame cap is not
/// applied on the way out; clients size their own `max_frame` accordingly.
fn respond(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let payload = response.to_wire_bytes();
    let mut out = Vec::with_capacity(payload.len() + 4);
    write_frame(&mut out, &payload, usize::MAX)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "unframeable response"))?;
    stream.write_all(&out)
}

fn serve_connection(mut stream: TcpStream, shared: Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    let max_frame = shared.config.max_frame;

    loop {
        let first = match wait_first_byte(&mut stream, &shared)? {
            Some(byte) => byte,
            None => return Ok(()),
        };

        // A frame has started: give the peer the full read timeout for the
        // rest of it, and stitch the already-consumed first byte back on.
        stream.set_read_timeout(Some(shared.config.read_timeout))?;
        let first_buf = [first];
        let payload = {
            let mut chained = (&first_buf[..]).chain(&mut stream);
            match read_frame(&mut chained, max_frame) {
                Ok(Some(payload)) => payload,
                // EOF inside the prefix after 1 byte = torn frame: close.
                Ok(None) => return Ok(()),
                Err(FrameError::Oversized { len, max }) => {
                    // The length prefix itself was readable, so the
                    // connection is not desynchronized yet — but the
                    // payload behind it is unread.  Report, then close.
                    let response = Response::Error(RemoteError::BadRequest(format!(
                        "frame of {len} bytes exceeds the {max} byte cap"
                    )));
                    let _ = respond(&mut stream, &response);
                    return Ok(());
                }
                Err(FrameError::Io(_)) => return Ok(()),
            }
        };

        let request = match Request::from_wire_bytes(&payload, &shared.ctx) {
            Ok(request) => request,
            Err(e) => {
                // Undecodable payload: the stream itself is still framed,
                // but trusting a peer that sends garbage is not worth it —
                // answer once, then close.
                let response =
                    Response::Error(RemoteError::BadRequest(format!("undecodable request: {e}")));
                let _ = respond(&mut stream, &response);
                return Ok(());
            }
        };

        let response = match request {
            Request::Ping => Response::Pong {
                role: shared.service.role(),
                level: shared.config.level_name().to_string(),
            },
            Request::Shutdown => {
                let _ = respond(&mut stream, &Response::ShuttingDown);
                shared.shutdown.store(true, Ordering::SeqCst);
                return Ok(());
            }
            _ if shared.shutting_down() => Response::Error(RemoteError::ShuttingDown),
            other => shared.service.handle(other),
        };
        respond(&mut stream, &response)?;
    }
}
