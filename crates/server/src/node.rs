//! The TCP node: bind, accept, dispatch, drain.
//!
//! One hand-rolled blocking listener per node.  Each accepted connection
//! gets a *reader* thread running a frame-decode loop and a paired *writer*
//! thread that frames responses back in request order (coalescing
//! consecutive ready responses into one vectored write).  A connection
//! waits for the *first byte* of a frame in short timeout slices (so it
//! notices shutdown while idle), then switches to the full read timeout for
//! the remainder — a slow-but-live peer mid-frame is never cut off by the
//! idle poll, and a pipelined peer whose next frame is already buffered
//! never re-enters the poll at all.
//!
//! On a proxy booted with `--batch-max > 1`, pairing-heavy requests
//! (`Disclose` / `DiscloseCategory`) are not handled on the connection
//! thread: readers submit them to the batch scheduler, which drains up
//! to `batch_max` requests per tick across *all* connections and executes
//! them as one engine batch.  Cheap requests bypass the queue and are
//! answered inline.  Per-connection response order is preserved either way,
//! because each reader enqueues its response slot with the writer before
//! submitting.
//!
//! Shutdown — via [`crate::signal`] or a `Shutdown` frame — stops the
//! accept loop, lets every in-flight request finish (including entries
//! still queued in the scheduler: they are answered, not dropped), joins
//! the connection threads, `sync()`s the store, and releases the advisory
//! directory lock by dropping it.

use crate::config::NodeConfig;
use crate::metrics;
use crate::replica::{self, ReplicaControl};
use crate::scheduler::{BatchEntry, ResponseSlot, Scheduler};
use crate::service::RoleService;
use crate::signal;
use rand::rngs::OsRng;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tibpre_client::{params_for_level, ClientConfig, NodeRole, RemoteError, Request, Response};
use tibpre_engine::ReEncryptEngine;
use tibpre_ibe::Kgc;
use tibpre_pairing::DecodeCtx;
use tibpre_phr::{Durability, EncryptedPhrStore, ProxyService};
use tibpre_storage::ChunkOutcome;
use tibpre_wire::{read_frame, write_frame, write_frames, FrameError, WireDecode, WireEncode};

/// How long an idle connection sleeps between shutdown-flag checks while
/// waiting for the first byte of the next frame.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// How long the accept loop sleeps when no connection is pending.  Accept
/// latency is paid on every reconnect — a replica resubscribing after a
/// network cut, a client pool refilling — so the poll is short: a coarse
/// slice here puts tens of milliseconds in front of every handshake, which
/// is enough for a flaky path to sever the new connection before it ever
/// authenticates its first frame.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection bound on responses in flight between reader and writer.
/// A pipelined peer deeper than this blocks its reader (backpressure)
/// instead of growing server memory without limit.
const PIPELINE_BACKLOG: usize = 256;

/// Caps one coalesced vectored response write (frame count and payload
/// bytes) so a burst of ready responses cannot monopolize the socket
/// buffer in a single syscall.
const WRITE_COALESCE_MAX: usize = 64;
const WRITE_COALESCE_BYTES: usize = 1024 * 1024;

/// Errors booting a node.
#[derive(Debug)]
pub enum ServerError {
    /// Binding or configuring the listener failed.
    Io(io::Error),
    /// Opening the durable store or proxy state failed.
    Phr(tibpre_phr::PhrError),
    /// The proxy could not reach its store node.
    Client(tibpre_client::ClientError),
}

impl core::fmt::Display for ServerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "I/O error: {e}"),
            ServerError::Phr(e) => write!(f, "PHR state error: {e}"),
            ServerError::Client(e) => write!(f, "store connection error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<tibpre_phr::PhrError> for ServerError {
    fn from(e: tibpre_phr::PhrError) -> Self {
        ServerError::Phr(e)
    }
}

impl From<tibpre_client::ClientError> for ServerError {
    fn from(e: tibpre_client::ClientError) -> Self {
        ServerError::Client(e)
    }
}

struct Shared {
    service: RoleService,
    config: NodeConfig,
    ctx: DecodeCtx,
    shutdown: AtomicBool,
    /// The cross-request batch scheduler (proxy role with `batch_max > 1`).
    scheduler: Option<Arc<Scheduler>>,
    /// Joined by the accept loop on drain, after the scheduler stops.
    sched_thread: parking_lot::Mutex<Option<JoinHandle<()>>>,
    /// Joined by the accept loop on drain (replica nodes only).
    tail_thread: parking_lot::Mutex<Option<JoinHandle<()>>>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::interrupted()
    }
}

/// A running node.  Dropping the handle does **not** stop the node; call
/// [`NodeHandle::shutdown`] (or send a `Shutdown` frame / SIGINT) and then
/// [`NodeHandle::wait`].
pub struct NodeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    engine_note: Option<String>,
}

impl NodeHandle {
    /// The bound listen address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `TIBPRE_WORKERS` value the engine rejected at startup, if any
    /// (surfaced in the `tibpre-node` banner).
    pub fn engine_note(&self) -> Option<&str> {
        self.engine_note.as_deref()
    }

    /// Requests a graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the node has drained and released its state.
    pub fn wait(mut self) {
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

/// Boots a node from its configuration and returns once the listener is
/// accepting.
pub fn start(config: NodeConfig) -> Result<NodeHandle, ServerError> {
    let params = params_for_level(config.level);
    let mut engine_note = None;
    // A replica's bootstrap connection, deferred until `Shared` exists so
    // the tail thread's join handle has somewhere to live.
    let mut replica_boot: Option<(
        TcpStream,
        Arc<EncryptedPhrStore>,
        Arc<ReplicaControl>,
        String,
    )> = None;

    let service = match config.role {
        NodeRole::Kgc => RoleService::Kgc(Box::new(Kgc::setup(
            Arc::clone(&params),
            &config.kgc_label,
            &mut OsRng,
        ))),
        NodeRole::Store => match &config.replica_of {
            Some(primary) => {
                // Handshake first: the primary's initial status frame tells
                // us its shard count, which sizes the replica store.  The
                // primary may still be booting, so retry for a while.
                let ctx = DecodeCtx::from(&params);
                let deadline = Instant::now() + Duration::from_secs(30);
                let (stream, positions) =
                    replica::subscribe_with_retry(primary, &ctx, Vec::new(), deadline)?;
                let store = Arc::new(EncryptedPhrStore::with_shards_and_params(
                    &config.name,
                    positions.len(),
                    Arc::clone(&params),
                ));
                let control = Arc::new(ReplicaControl::new(vec![0; positions.len()]));
                replica_boot = Some((
                    stream,
                    Arc::clone(&store),
                    Arc::clone(&control),
                    primary.clone(),
                ));
                RoleService::Store {
                    store,
                    replica: Some(control),
                }
            }
            None => {
                let store = match &config.data_dir {
                    Some(dir) => {
                        EncryptedPhrStore::open(dir, Durability::new(Arc::clone(&params)))?
                    }
                    None => {
                        EncryptedPhrStore::in_memory_with_params(&config.name, Arc::clone(&params))
                    }
                };
                RoleService::Store {
                    store: Arc::new(store),
                    replica: None,
                }
            }
        },
        NodeRole::Proxy => {
            let store_addr = config
                .store_addr
                .clone()
                .expect("NodeConfig::parse_args rejects a proxy without --store");
            let client_config = ClientConfig {
                read_timeout: Some(config.read_timeout.max(Duration::from_secs(30))),
                write_timeout: Some(config.write_timeout.max(Duration::from_secs(30))),
                max_frame: config.max_frame,
            };
            let store = Arc::new(tibpre_client::RemoteStore::connect(
                store_addr.as_str(),
                &params,
                &client_config,
                config.store_connections,
            )?);
            let (engine, rejected) = ReEncryptEngine::from_env_reporting();
            engine_note = rejected;
            let mut proxy = match &config.data_dir {
                Some(dir) => ProxyService::open(
                    &config.name,
                    store,
                    dir,
                    &Durability::new(Arc::clone(&params)),
                )?,
                None => ProxyService::new(&config.name, store),
            };
            proxy.set_engine(engine);
            RoleService::Proxy(Box::new(parking_lot::RwLock::new(proxy)))
        }
    };

    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    // The scheduler only pays off where batches reach the pairing-heavy
    // engine paths — the proxy role.  `--batch-max 1` turns it off.
    let scheduler = (config.role == NodeRole::Proxy && config.batch_max > 1)
        .then(|| Scheduler::new(config.batch_max, config.batch_window));

    let shared = Arc::new(Shared {
        service,
        config,
        ctx: DecodeCtx::from(&params),
        shutdown: AtomicBool::new(false),
        scheduler,
        sched_thread: parking_lot::Mutex::new(None),
        tail_thread: parking_lot::Mutex::new(None),
    });

    if let Some(scheduler) = shared.scheduler.as_ref().map(Arc::clone) {
        let sched_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("tibpre-sched".to_string())
            .spawn(move || {
                scheduler.run(|requests| sched_shared.service.handle_batch(requests));
            })?;
        *shared.sched_thread.lock() = Some(handle);
    }

    if let Some((stream, store, control, primary)) = replica_boot {
        let tail_ctx = DecodeCtx::from(&params);
        let handle = std::thread::Builder::new()
            .name("tibpre-replica-tail".to_string())
            .spawn(move || replica::run_tail(primary, store, control, tail_ctx, stream))?;
        *shared.tail_thread.lock() = Some(handle);
    }

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("tibpre-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared))?;

    Ok(NodeHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        engine_note,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("tibpre-conn".to_string())
                    .spawn(move || {
                        let _ = serve_connection(stream, conn_shared);
                    });
                if let Ok(handle) = spawned {
                    connections.push(handle);
                }
                connections.retain(|handle| !handle.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                connections.retain(|handle| !handle.is_finished());
                std::thread::sleep(ACCEPT_POLL);
            }
            // A failed accept (e.g. a peer resetting mid-handshake) must
            // not take the listener down.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    drop(listener);
    // Drain: every connection thread observes the shutdown flag within one
    // idle-poll slice (or finishes its in-flight request) and exits.  The
    // scheduler keeps executing while they drain — queued entries are
    // answered, never dropped — and is stopped only once no reader can
    // submit any more.
    for handle in connections {
        let _ = handle.join();
    }
    if let Some(scheduler) = &shared.scheduler {
        scheduler.stop();
    }
    if let Some(sched) = shared.sched_thread.lock().take() {
        let _ = sched.join();
    }
    if let Some(control) = shared.service.replica() {
        control.request_stop();
    }
    if let Some(tail) = shared.tail_thread.lock().take() {
        let _ = tail.join();
    }
    if let Some(store) = shared.service.store() {
        let _ = store.sync();
    }
}

/// Waits for the first byte of the next frame, polling the shutdown flag
/// between short timeout slices.  Returns `Ok(None)` on clean EOF or
/// shutdown/idle-timeout, `Ok(Some(byte))` once a frame starts.
fn wait_first_byte(stream: &TcpStream, shared: &Shared) -> io::Result<Option<u8>> {
    let deadline = Instant::now() + shared.config.idle_timeout;
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let mut first = [0u8; 1];
    let mut handle = stream;
    loop {
        match handle.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(first[0])),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() || Instant::now() >= deadline {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Frames and writes one response.  Oversized *responses* are legitimate (a
/// category disclosure can exceed the request cap), so the frame cap is not
/// applied on the way out; clients size their own `max_frame` accordingly.
fn respond(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let payload = response.to_wire_bytes();
    let mut out = Vec::with_capacity(payload.len() + 4);
    write_frame(&mut out, &payload, usize::MAX)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "unframeable response"))?;
    stream.write_all(&out)
}

/// The writer stage: consumes response slots strictly in enqueue (= request)
/// order, blocking on the head slot and coalescing every consecutive
/// already-filled slot behind it into one vectored multi-frame write.
fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<Arc<ResponseSlot>>) {
    let mut pending: Option<Arc<ResponseSlot>> = None;
    loop {
        let head = match pending.take() {
            Some(slot) => slot,
            None => match rx.recv() {
                Ok(slot) => slot,
                Err(_) => return, // reader gone and channel drained
            },
        };
        let mut payloads = vec![head.wait_take().to_wire_bytes()];
        let mut bytes = payloads[0].len();
        while payloads.len() < WRITE_COALESCE_MAX && bytes < WRITE_COALESCE_BYTES {
            match rx.try_recv() {
                Ok(slot) => match slot.try_take() {
                    Some(response) => {
                        let payload = response.to_wire_bytes();
                        bytes += payload.len();
                        payloads.push(payload);
                    }
                    None => {
                        // Not ready yet: it becomes the next head so order
                        // is preserved.
                        pending = Some(slot);
                        break;
                    }
                },
                Err(_) => break,
            }
        }
        // Outbound frames are uncapped, same as `respond`.
        if write_frames(&mut stream, &payloads, usize::MAX).is_err() {
            return; // the reader notices via its closed channel sends
        }
    }
}

/// Enqueues an already-computed response with the writer.  `false` means
/// the writer is gone (its socket died) and the reader should close too.
fn enqueue_response(tx: &mpsc::SyncSender<Arc<ResponseSlot>>, response: Response) -> bool {
    tx.send(ResponseSlot::filled(response)).is_ok()
}

/// Reads one frame, stitching a pre-consumed lead byte back on when the
/// idle poll swallowed it.
fn read_frame_with_lead(
    reader: &mut BufReader<TcpStream>,
    lead: Option<u8>,
    max: usize,
) -> Result<Option<Vec<u8>>, FrameError> {
    match lead {
        Some(byte) => {
            let lead_buf = [byte];
            let mut chained = (&lead_buf[..]).chain(reader);
            read_frame(&mut chained, max)
        }
        None => read_frame(reader, max),
    }
}

fn serve_connection(stream: TcpStream, shared: Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer_stream = stream.try_clone()?;
    // A bounded channel is the pipelining backpressure: a peer more than
    // PIPELINE_BACKLOG requests deep blocks its own reader here.
    let (tx, rx) = mpsc::sync_channel::<Arc<ResponseSlot>>(PIPELINE_BACKLOG);
    let writer = std::thread::Builder::new()
        .name("tibpre-writer".to_string())
        .spawn(move || writer_loop(writer_stream, rx))?;

    let outcome = read_loop(&mut reader, &stream, &shared, &tx);
    // Closing the channel lets the writer finish flushing every response
    // still owed (slots are always eventually filled), then exit.
    drop(tx);
    let _ = writer.join();
    match outcome {
        // The connection leaves the request→response loop and becomes a
        // server-push replication stream until the peer disconnects or the
        // node drains.  The writer has already drained and exited, so the
        // stream is exclusively ours again.
        Ok(Some(applied)) => serve_replication(stream, &shared, applied),
        Ok(None) => Ok(()),
        Err(e) => Err(e),
    }
}

/// The reader stage: decodes frames, answers cheap requests inline, and
/// submits pairing-heavy requests to the scheduler — always enqueueing the
/// response slot with the writer first, which is what preserves
/// per-connection response order.  Returns `Ok(Some(applied))` to hand the
/// connection over to replication streaming.
fn read_loop(
    reader: &mut BufReader<TcpStream>,
    stream: &TcpStream,
    shared: &Shared,
    tx: &mpsc::SyncSender<Arc<ResponseSlot>>,
) -> io::Result<Option<Vec<u64>>> {
    let max_frame = shared.config.max_frame;
    loop {
        // Pipelined peers: bytes already buffered mean the next frame has
        // begun — skip the idle poll entirely instead of paying up to one
        // poll slice of latency per queued frame.
        let lead = if reader.buffer().is_empty() {
            match wait_first_byte(stream, shared)? {
                Some(byte) => {
                    // A frame has started: give the peer the full read
                    // timeout for the rest of it.
                    stream.set_read_timeout(Some(shared.config.read_timeout))?;
                    Some(byte)
                }
                None => return Ok(None),
            }
        } else {
            None
        };

        let payload = match read_frame_with_lead(reader, lead, max_frame) {
            Ok(Some(payload)) => payload,
            // EOF at (or inside) the prefix: the peer hung up — close.
            Ok(None) => return Ok(None),
            Err(FrameError::Oversized { len, max }) => {
                // The length prefix itself was readable, so the connection
                // is not desynchronized yet — but the payload behind it is
                // unread.  Report, then close.
                let _ = enqueue_response(
                    tx,
                    Response::Error(RemoteError::BadRequest(format!(
                        "frame of {len} bytes exceeds the {max} byte cap"
                    ))),
                );
                return Ok(None);
            }
            Err(FrameError::Io(_)) => return Ok(None),
        };

        let request = match Request::from_wire_bytes(&payload, &shared.ctx) {
            Ok(request) => request,
            Err(e) => {
                // Undecodable payload: the stream itself is still framed,
                // but trusting a peer that sends garbage is not worth it —
                // answer once, then close.
                let _ = enqueue_response(
                    tx,
                    Response::Error(RemoteError::BadRequest(format!("undecodable request: {e}"))),
                );
                return Ok(None);
            }
        };

        let alive = match request {
            Request::Ping => enqueue_response(
                tx,
                Response::Pong {
                    role: shared.service.role(),
                    level: shared.config.level_name().to_string(),
                },
            ),
            Request::Shutdown => {
                let _ = enqueue_response(tx, Response::ShuttingDown);
                shared.shutdown.store(true, Ordering::SeqCst);
                return Ok(None);
            }
            Request::SubscribeReplication { applied } => return Ok(Some(applied)),
            _ if shared.shutting_down() => {
                enqueue_response(tx, Response::Error(RemoteError::ShuttingDown))
            }
            other => match &shared.scheduler {
                Some(scheduler)
                    if matches!(
                        other,
                        Request::Disclose { .. } | Request::DiscloseCategory { .. }
                    ) =>
                {
                    // Slot goes to the writer BEFORE the scheduler can fill
                    // it: writer order == request order.
                    let slot = ResponseSlot::empty();
                    if tx.send(Arc::clone(&slot)).is_err() {
                        return Ok(None);
                    }
                    if let Err(entry) = scheduler.submit(BatchEntry {
                        request: other,
                        slot,
                    }) {
                        // Lost the race against scheduler stop: the slot is
                        // already with the writer, so answer it inline.
                        entry.slot.fill(shared.service.handle(entry.request));
                    }
                    true
                }
                Some(_) => {
                    metrics::note_bypass();
                    enqueue_response(tx, shared.service.handle(other))
                }
                None => enqueue_response(tx, shared.service.handle(other)),
            },
        };
        if !alive {
            return Ok(None);
        }
    }
}

/// Maximum raw WAL bytes shipped in one `SegmentChunk` frame.
const CHUNK_MAX: usize = 256 * 1024;

/// How often an idle replication stream sends a `ReplicaStatus` heartbeat.
const HEARTBEAT_EVERY: Duration = Duration::from_secs(1);

/// How long the push loop blocks on the commit notifier per wait (bounds
/// how late it notices shutdown).
const COMMIT_WAIT: Duration = Duration::from_millis(100);

/// The server half of a replication subscription: stream committed WAL
/// bytes (and snapshot generations for garbage-collected prefixes) to the
/// peer until it disconnects or this node drains.
fn serve_replication(mut stream: TcpStream, shared: &Shared, applied: Vec<u64>) -> io::Result<()> {
    let store = match shared.service.store() {
        Some(store) => Arc::clone(store),
        None => {
            let _ = respond(
                &mut stream,
                &Response::Error(RemoteError::WrongRole(
                    "replication is served by the store role".to_string(),
                )),
            );
            return Ok(());
        }
    };
    if !store.is_durable() {
        // An in-memory store has no WAL to ship; refusing here beats a
        // subscriber silently tailing an empty log forever.
        let _ = respond(
            &mut stream,
            &Response::Error(RemoteError::BadRequest(
                "replication needs a durable primary (boot it with --data-dir)".to_string(),
            )),
        );
        return Ok(());
    }
    let committed = store.replication_positions();
    let shards = committed.len();
    // An empty vector is the fresh-replica handshake: the status frame
    // below tells the peer the shard count, and streaming starts at zero.
    let mut from = if applied.is_empty() {
        vec![0; shards]
    } else {
        applied
    };
    if from.len() != shards {
        let _ = respond(
            &mut stream,
            &Response::Error(RemoteError::BadRequest(format!(
                "subscription carries {} shard offsets but the store has {shards} shards",
                from.len()
            ))),
        );
        return Ok(());
    }
    respond(
        &mut stream,
        &Response::ReplicaStatus {
            positions: committed,
            writable: shared.service.writable(),
        },
    )?;

    let notifier = store.commit_notifier();
    let mut epoch = notifier.epoch();
    let mut last_heartbeat = Instant::now();
    while !shared.shutting_down() {
        let mut sent_any = false;
        for (shard, pos) in from.iter_mut().enumerate() {
            loop {
                if shared.shutting_down() {
                    return Ok(());
                }
                match store.replication_chunk(shard, *pos, CHUNK_MAX) {
                    Ok(ChunkOutcome::Bytes(bytes)) => {
                        let len = bytes.len() as u64;
                        respond(
                            &mut stream,
                            &Response::SegmentChunk {
                                shard: shard as u64,
                                start: *pos,
                                bytes,
                            },
                        )?;
                        *pos += len;
                        sent_any = true;
                    }
                    Ok(ChunkOutcome::CaughtUp) => break,
                    Ok(ChunkOutcome::Ahead) => {
                        // The peer claims more log than this store has
                        // committed — it is following the wrong primary (or
                        // a demoted one).  Refuse rather than guess.
                        let _ = respond(
                            &mut stream,
                            &Response::Error(RemoteError::BadRequest(format!(
                                "shard {shard}: subscriber offset {} is ahead of this store",
                                *pos
                            ))),
                        );
                        return Ok(());
                    }
                    Ok(ChunkOutcome::Gone) => {
                        // The requested offset was garbage-collected; ship
                        // the newest snapshot generation and resume the
                        // byte stream from its WAL offset.
                        match store.replication_snapshot(shard) {
                            Ok(Some((gen, offset, bytes))) => {
                                respond(
                                    &mut stream,
                                    &Response::SnapshotGeneration {
                                        shard: shard as u64,
                                        gen,
                                        wal_offset: offset,
                                        bytes,
                                    },
                                )?;
                                *pos = offset;
                                sent_any = true;
                            }
                            Ok(None) => {
                                let _ = respond(
                                    &mut stream,
                                    &Response::Error(RemoteError::Internal(format!(
                                        "shard {shard}: log prefix gone but no snapshot exists"
                                    ))),
                                );
                                return Ok(());
                            }
                            Err(e) => {
                                let _ = respond(
                                    &mut stream,
                                    &Response::Error(RemoteError::from_phr(&e)),
                                );
                                return Ok(());
                            }
                        }
                    }
                    Err(e) => {
                        let _ = respond(&mut stream, &Response::Error(RemoteError::from_phr(&e)));
                        return Ok(());
                    }
                }
            }
        }
        if sent_any {
            last_heartbeat = Instant::now();
            continue;
        }
        // Fully caught up: block until the next commit (or a short timeout
        // so shutdown is noticed), heartbeating about once a second so the
        // peer can tell a quiet primary from a dead one.
        epoch = notifier.wait_beyond(epoch, COMMIT_WAIT);
        if last_heartbeat.elapsed() >= HEARTBEAT_EVERY {
            respond(
                &mut stream,
                &Response::ReplicaStatus {
                    positions: from.clone(),
                    writable: shared.service.writable(),
                },
            )?;
            last_heartbeat = Instant::now();
        }
    }
    Ok(())
}
