//! `tibpre-load` — the TIB-PRE load generator: decrypt-heavy disclosure
//! traffic with Zipf patient popularity and grant/revoke churn, against a
//! running kgc/store/proxy node set.

use tibpre_client::level_from_name;
use tibpre_server::load::{run_load, LoadConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("tibpre-load: {message}");
            print_usage();
            std::process::exit(2);
        }
    };

    eprintln!(
        "tibpre-load: {} clients x {} requests (pipeline {}), {} patients (zipf {}), \
         churn every {}",
        config.clients,
        config.requests,
        config.pipeline,
        config.patients,
        config.zipf_exponent,
        config.churn_every,
    );
    match run_load(&config) {
        Ok(report) => {
            let sched = match &report.sched {
                Some(s) => format!(
                    ",\"sched\":{{\"batches\":{},\"batched_requests\":{},\"bypass\":{},\
                     \"queue_depth\":{},\"queue_peak\":{},\"hist\":{:?}}}",
                    s.batches, s.batched_requests, s.bypass, s.queue_depth, s.queue_peak, s.hist,
                ),
                None => String::new(),
            };
            println!(
                "{{\"ok\":{},\"denied\":{},\"errors\":{},\"reordered\":{},\"churn_ops\":{},\
                 \"elapsed_s\":{:.3},\"p50_us\":{},\"p99_us\":{},\"max_us\":{},\
                 \"req_per_sec\":{:.1}{sched}}}",
                report.ok,
                report.denied,
                report.errors,
                report.reordered,
                report.churn_ops,
                report.elapsed.as_secs_f64(),
                report.p50_us,
                report.p99_us,
                report.max_us,
                report.req_per_sec,
            );
            if let Some(s) = &report.sched {
                eprintln!(
                    "tibpre-load: scheduler {} batches over {} requests \
                     ({} bypassed), batch-size histogram {:?}, queue peak {}",
                    s.batches, s.batched_requests, s.bypass, s.hist, s.queue_peak,
                );
            }
            if report.errors > 0 || report.reordered > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("tibpre-load: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_args(args: &[String]) -> Result<LoadConfig, String> {
    let mut config = LoadConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .clone();
        match flag.as_str() {
            "--kgc" => config.kgc_addr = value,
            "--store" => config.store_addr = value,
            "--proxy" => config.proxy_addr = value,
            "--level" => {
                config.level =
                    level_from_name(&value).ok_or_else(|| format!("unknown level {value}"))?;
            }
            "--clients" => config.clients = parse_num(flag, &value)?,
            "--requests" => config.requests = parse_num(flag, &value)?,
            "--patients" => config.patients = parse_num(flag, &value)?,
            "--records-per-patient" => config.records_per_patient = parse_num(flag, &value)?,
            "--zipf" => {
                config.zipf_exponent = value.parse().map_err(|_| format!("bad {flag} {value}"))?;
            }
            "--churn-every" => config.churn_every = parse_num(flag, &value)?,
            "--open-rate" => {
                config.open_rate = Some(value.parse().map_err(|_| format!("bad {flag} {value}"))?);
            }
            "--payload" => config.payload_len = parse_num(flag, &value)?,
            "--seed" => config.seed = parse_num(flag, &value)?,
            "--pipeline" => {
                config.pipeline = parse_num(flag, &value)?;
                if config.pipeline == 0 {
                    return Err("--pipeline must be at least 1".to_string());
                }
            }
            "--read-replicas" => {
                config.read_replicas = value
                    .split(',')
                    .map(|addr| addr.trim().to_string())
                    .filter(|addr| !addr.is_empty())
                    .collect();
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(config)
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("bad {flag} {value}"))
}

fn print_usage() {
    eprintln!(
        "usage: tibpre-load [options]\n\
         \n\
         options:\n\
         \x20 --kgc <host:port>            KGC node (default 127.0.0.1:7070)\n\
         \x20 --store <host:port>          store node (default 127.0.0.1:7071)\n\
         \x20 --proxy <host:port>          proxy node (default 127.0.0.1:7072)\n\
         \x20 --level <name>               toy|low80|medium112|high128 (default toy)\n\
         \x20 --clients <n>                concurrent clients (default 4)\n\
         \x20 --requests <n>               total disclosure budget (default 400)\n\
         \x20 --patients <n>               distinct patients (default 16)\n\
         \x20 --records-per-patient <n>    uploaded per patient (default 4)\n\
         \x20 --zipf <s>                   patient popularity skew (default 1.0)\n\
         \x20 --churn-every <n>            revoke+regrant cadence, 0=off (default 25)\n\
         \x20 --open-rate <r>              per-client req/s (default: closed loop)\n\
         \x20 --payload <bytes>            record payload size (default 256)\n\
         \x20 --seed <n>                   deterministic seed\n\
         \x20 --pipeline <k>               in-flight disclosures per client connection\n\
         \x20                              (default 1 = lockstep request/response)\n\
         \x20 --read-replicas <a,b,...>    round-robin reads across these replica\n\
         \x20                              store nodes (writes stay on the primary)"
    );
}
