//! `tibpre-node` — one TIB-PRE node: `--role kgc|proxy|store`.
//!
//! Also carries the two replica admin verbs: `--status <addr>` prints a
//! store node's replication positions and write gate as JSON, and
//! `--promote <addr>` opens a replica's write gate after its primary is
//! lost.

use tibpre_client::{params_for_level, ClientConfig, ClientError, Connection, Request, Response};
use tibpre_pairing::SecurityLevel;
use tibpre_server::{config::NodeConfig, node, signal};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if let Some(code) = run_admin(&args) {
        std::process::exit(code);
    }
    let config = match NodeConfig::parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("tibpre-node: {message}");
            print_usage();
            std::process::exit(2);
        }
    };

    signal::install();
    let handle = match node::start(config.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("tibpre-node: failed to start: {e}");
            std::process::exit(1);
        }
    };

    match &config.replica_of {
        Some(primary) => eprintln!(
            "tibpre-node: {} role listening on {} (level {}, name {:?}, replica of {primary})",
            config.role.name(),
            handle.addr(),
            config.level_name(),
            config.name,
        ),
        None => eprintln!(
            "tibpre-node: {} role listening on {} (level {}, name {:?})",
            config.role.name(),
            handle.addr(),
            config.level_name(),
            config.name,
        ),
    }
    if let Some(rejected) = handle.engine_note() {
        eprintln!(
            "tibpre-node: ignored unparsable TIBPRE_WORKERS={rejected:?}; \
             using available parallelism"
        );
    }

    handle.wait();
    eprintln!("tibpre-node: drained and stopped");
}

/// Handles the admin verbs (`--status`, `--promote`); returns the process
/// exit code, or `None` when the arguments describe a normal node boot.
fn run_admin(args: &[String]) -> Option<i32> {
    let verb = match args.first().map(String::as_str) {
        Some(verb @ ("--status" | "--promote")) => verb,
        _ => return None,
    };
    let Some(addr) = args.get(1).filter(|_| args.len() == 2) else {
        eprintln!("tibpre-node: {verb} needs exactly one <host:port>");
        return Some(2);
    };
    // Status and promote frames carry no group elements, so the parameter
    // level never matters for decoding them.
    let params = params_for_level(SecurityLevel::Toy);
    let mut conn = match Connection::connect(addr.as_str(), &params, &ClientConfig::default()) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("tibpre-node: cannot reach {addr}: {e}");
            return Some(1);
        }
    };
    if verb == "--promote" {
        return Some(match conn.call(&Request::Promote) {
            Ok(Response::Ok) => {
                println!("{{\"promoted\":true}}");
                0
            }
            Ok(other) => {
                eprintln!("tibpre-node: unexpected response {other:?}");
                1
            }
            Err(e) => {
                eprintln!("tibpre-node: {verb} failed: {e}");
                1
            }
        });
    }
    // `--status`: scheduler counters first (every role answers those), then
    // the store-only replication view.
    let sched = match conn.call(&Request::SchedStats) {
        Ok(Response::SchedStats(s)) => format!(
            "{{\"batches\":{},\"batched_requests\":{},\"bypass\":{},\
             \"queue_depth\":{},\"queue_peak\":{},\"hist\":{:?}}}",
            s.batches, s.batched_requests, s.bypass, s.queue_depth, s.queue_peak, s.hist,
        ),
        _ => "null".to_string(),
    };
    Some(match conn.call(&Request::ReplicationStatus) {
        Ok(Response::ReplicaStatus {
            positions,
            writable,
        }) => {
            println!("{{\"writable\":{writable},\"positions\":{positions:?},\"sched\":{sched}}}");
            0
        }
        // A kgc/proxy node has no replication view; its status is the
        // scheduler counters alone.
        Err(ClientError::Remote(_)) => {
            println!("{{\"sched\":{sched}}}");
            0
        }
        Ok(other) => {
            eprintln!("tibpre-node: unexpected response {other:?}");
            1
        }
        Err(e) => {
            eprintln!("tibpre-node: {verb} failed: {e}");
            1
        }
    })
}

fn print_usage() {
    eprintln!(
        "usage: tibpre-node --role kgc|proxy|store [options]\n\
         \n\
         options:\n\
         \x20 --addr <host:port>           listen address (default 127.0.0.1:0)\n\
         \x20 --level <name>               toy|low80|medium112|high128 (default toy)\n\
         \x20 --data-dir <path>            durable state directory (default in-memory)\n\
         \x20 --store <host:port>          store node a proxy reads from (proxy only, required)\n\
         \x20 --replica-of <host:port>     primary store to replicate from (store only; in-memory\n\
         \x20                              read replica: rejects writes until promoted)\n\
         \x20 --store-connections <n>      proxy→store connection pool size (default 4)\n\
         \x20 --kgc-label <label>          KGC domain label (default tibpre-kgc)\n\
         \x20 --name <name>                node display/store name\n\
         \x20 --idle-timeout-secs <n>      per-connection idle limit (default 300)\n\
         \x20 --read-timeout-secs <n>      in-frame read limit (default 10)\n\
         \x20 --write-timeout-secs <n>     response write limit (default 10)\n\
         \x20 --max-frame <bytes>          request frame cap (default 8 MiB)\n\
         \x20 --batch-max <n>              max requests per scheduler batch, proxy role\n\
         \x20                              (default 16; 1 disables the scheduler)\n\
         \x20 --batch-window-us <us>       linger for a partially filled batch under\n\
         \x20                              load (default 200)\n\
         \n\
         admin verbs (connect to a running node and exit):\n\
         \x20 --status <host:port>         print replication positions, write gate, and\n\
         \x20                              batch-scheduler counters as JSON\n\
         \x20 --promote <host:port>        open a replica's write gate (primary lost)"
    );
}
