//! `tibpre-node` — one TIB-PRE node: `--role kgc|proxy|store`.

use tibpre_server::{config::NodeConfig, node, signal};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let config = match NodeConfig::parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("tibpre-node: {message}");
            print_usage();
            std::process::exit(2);
        }
    };

    signal::install();
    let handle = match node::start(config.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("tibpre-node: failed to start: {e}");
            std::process::exit(1);
        }
    };

    eprintln!(
        "tibpre-node: {} role listening on {} (level {}, name {:?})",
        config.role.name(),
        handle.addr(),
        config.level_name(),
        config.name,
    );
    if let Some(rejected) = handle.engine_note() {
        eprintln!(
            "tibpre-node: ignored unparsable TIBPRE_WORKERS={rejected:?}; \
             using available parallelism"
        );
    }

    handle.wait();
    eprintln!("tibpre-node: drained and stopped");
}

fn print_usage() {
    eprintln!(
        "usage: tibpre-node --role kgc|proxy|store [options]\n\
         \n\
         options:\n\
         \x20 --addr <host:port>           listen address (default 127.0.0.1:0)\n\
         \x20 --level <name>               toy|low80|medium112|high128 (default toy)\n\
         \x20 --data-dir <path>            durable state directory (default in-memory)\n\
         \x20 --store <host:port>          store node a proxy reads from (proxy only, required)\n\
         \x20 --store-connections <n>      proxy→store connection pool size (default 4)\n\
         \x20 --kgc-label <label>          KGC domain label (default tibpre-kgc)\n\
         \x20 --name <name>                node display/store name\n\
         \x20 --idle-timeout-secs <n>      per-connection idle limit (default 300)\n\
         \x20 --read-timeout-secs <n>      in-frame read limit (default 10)\n\
         \x20 --write-timeout-secs <n>     response write limit (default 10)\n\
         \x20 --max-frame <bytes>          request frame cap (default 8 MiB)"
    );
}
