//! The load generator behind `tibpre-load` and experiment E13.
//!
//! Drives a kgc/store/proxy node set end-to-end: a setup phase extracts
//! keys, encrypts and uploads records, and installs grants; a measurement
//! phase runs N concurrent clients issuing decrypt-heavy disclosure traffic
//! with Zipf-distributed patient popularity and optional grant/revoke churn
//! riding along.  Every disclosure is *opened client-side* (a real
//! delegatee decrypt), so a reported success is a full
//! encrypt → store → re-encrypt → decrypt round trip, not just a 200-OK.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tibpre_client::{
    params_for_level, ClientConfig, ClientError, KgcClient, ProxyClient, SchedStatsReport,
    StoreClient,
};
use tibpre_core::{Delegator, ReEncryptionKey};
use tibpre_ibe::Identity;
use tibpre_pairing::SecurityLevel;
use tibpre_phr::{Category, HealthRecord, HealthcareProvider, RecordId};

/// What to throw at the node set.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// KGC node address.
    pub kgc_addr: String,
    /// Store node address.
    pub store_addr: String,
    /// Proxy node address.
    pub proxy_addr: String,
    /// Pairing level — must match the nodes'.
    pub level: SecurityLevel,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total disclosure requests across all clients (closed loop budget).
    pub requests: u64,
    /// Distinct patients.
    pub patients: usize,
    /// Records uploaded per patient during setup.
    pub records_per_patient: usize,
    /// Zipf skew for patient popularity (0.0 = uniform; ~1.0 = realistic
    /// hot-patient skew).
    pub zipf_exponent: f64,
    /// Every N requests a client revokes and re-installs the hot grant
    /// (0 disables churn).
    pub churn_every: u64,
    /// Open-loop target rate per client in requests/second (`None` =
    /// closed loop: issue as fast as responses return).
    pub open_rate: Option<f64>,
    /// Record payload size in bytes.
    pub payload_len: usize,
    /// Deterministic seed for identities, payloads, and arrival sampling.
    pub seed: u64,
    /// Pipeline depth per client connection: each client keeps up to this
    /// many disclosures in flight on its one socket (all requests written
    /// before the first response is read), which is what feeds the proxy's
    /// cross-request batch scheduler.  `1` is classic lockstep
    /// request/response.  Ignored by replica-read traffic.
    pub pipeline: usize,
    /// Read-replica store addresses.  When non-empty the measurement
    /// traffic becomes record *reads* round-robined across these replicas
    /// (every write — setup uploads and grant churn — still goes to the
    /// primary node set), so the load exercises the real replicated
    /// topology.
    pub read_replicas: Vec<String>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            kgc_addr: "127.0.0.1:7070".to_string(),
            store_addr: "127.0.0.1:7071".to_string(),
            proxy_addr: "127.0.0.1:7072".to_string(),
            level: SecurityLevel::Toy,
            clients: 4,
            requests: 400,
            patients: 16,
            records_per_patient: 4,
            zipf_exponent: 1.0,
            churn_every: 25,
            open_rate: None,
            payload_len: 256,
            seed: 0x7135_e2e1,
            pipeline: 1,
            read_replicas: Vec::new(),
        }
    }
}

/// What came back.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Disclosures that completed and decrypted client-side.
    pub ok: u64,
    /// Disclosures denied by policy (the expected race window while a
    /// churned grant is between revoke and re-install).
    pub denied: u64,
    /// Everything else: transport errors, failed decrypts.
    pub errors: u64,
    /// Pipelined responses that came back for a different record than the
    /// one their slot requested — any non-zero value is an ordering bug in
    /// the node, never expected in a healthy run.
    pub reordered: u64,
    /// Revoke + install operations performed by the churn traffic.
    pub churn_ops: u64,
    /// Wall-clock of the measurement phase.
    pub elapsed: Duration,
    /// Median end-to-end disclosure latency, microseconds.
    pub p50_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// Completed requests per second (ok + denied; a denial is a served
    /// policy answer, not a failure).
    pub req_per_sec: f64,
    /// The proxy's batch-scheduler counters, sampled after the measurement
    /// phase (best effort; `None` if the stats call failed).
    pub sched: Option<SchedStatsReport>,
}

/// Load-generator failures.
#[derive(Debug)]
pub enum LoadError {
    /// A node call failed during setup.
    Client(ClientError),
    /// Local cryptographic setup failed.
    Setup(String),
}

impl core::fmt::Display for LoadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LoadError::Client(e) => write!(f, "node call failed: {e}"),
            LoadError::Setup(what) => write!(f, "setup failed: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<ClientError> for LoadError {
    fn from(e: ClientError) -> Self {
        LoadError::Client(e)
    }
}

/// Zipf sampler over `0..n` via precomputed *tail* sums and binary search
/// (the vendored rand has no distribution support).
///
/// The distribution is stored as the complementary CDF
/// `tail[i] = P(bucket ≥ i)` rather than the forward CDF: at high skew the
/// forward `cdf[i] = 1 − tail(i+1)` rounds to exactly `1.0` as soon as the
/// remaining mass drops below an ulp, which silently made the last buckets
/// unreachable.  Tail sums keep arbitrarily small bucket masses
/// representable, so every bucket with non-zero `f64` mass stays sampleable
/// at any exponent.
struct Zipf {
    /// `tail[i] = Σ_{j ≥ i} w_j / Σ w_j`; decreasing, `tail[0] = 1.0`.
    tail: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, exponent: f64) -> Self {
        let n = n.max(1);
        let weights: Vec<f64> = (0..n)
            .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
            .collect();
        // Accumulate from the smallest weight up so tiny tail masses are not
        // absorbed by the head's rounding.
        let total: f64 = weights.iter().rev().sum();
        let mut tail = vec![0.0; n];
        let mut acc = 0.0;
        for i in (0..n).rev() {
            acc += weights[i];
            tail[i] = acc / total;
        }
        // Pin the full-distribution entry so the sampler's invariant
        // (`tail[0] ≥ v` for every v in (0, 1]) holds exactly.
        tail[0] = 1.0;
        Zipf { tail }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        // 53 uniform mantissa bits → v ∈ (0, 1].
        let v = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
        // Largest index whose tail mass still covers v.  `tail[0] = 1 ≥ v`
        // guarantees at least one true entry, and the count is at most `n`,
        // so the index is always in range.
        self.tail.partition_point(|&t| t >= v).saturating_sub(1)
    }
}

struct Fixture {
    patients: Vec<Identity>,
    records: Vec<Vec<RecordId>>,
    grants: Vec<ReEncryptionKey>,
    provider_id: Identity,
    category: Category,
}

/// One per-thread tally, merged after the join.
#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    denied: u64,
    errors: u64,
    reordered: u64,
    churn_ops: u64,
}

/// Runs setup + measurement against a live node set.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, LoadError> {
    let params = params_for_level(config.level);
    let client_config = ClientConfig::default();
    let category = Category::LabResults;

    // --- Setup: extract, encrypt, upload, grant. -------------------------
    let mut kgc = KgcClient::connect(config.kgc_addr.as_str(), &params, &client_config)?;
    let mut store = StoreClient::connect(config.store_addr.as_str(), &params, &client_config)?;
    let mut proxy = ProxyClient::connect(config.proxy_addr.as_str(), &params, &client_config)?;

    let domain = kgc.public_params()?;
    let provider_id = Identity::new("provider-oncology");
    let provider_key = kgc.extract(&provider_id)?;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut patients = Vec::with_capacity(config.patients);
    let mut records = Vec::with_capacity(config.patients);
    let mut grants = Vec::with_capacity(config.patients);
    for p in 0..config.patients.max(1) {
        let identity = Identity::new(format!("patient-{p:04}"));
        let delegator = Delegator::new(domain.clone(), kgc.extract(&identity)?);
        let mut ids = Vec::with_capacity(config.records_per_patient);
        for r in 0..config.records_per_patient.max(1) {
            let title = format!("lab-report-{r:03}");
            let mut payload = vec![0u8; config.payload_len];
            rng.fill_bytes(&mut payload);
            let aad = HealthRecord::associated_data(&identity, &category, &title);
            let ciphertext =
                delegator.encrypt_bytes(&payload, &aad, &category.type_tag(), &mut rng);
            ids.push(store.put(&identity, &category, &title, ciphertext)?);
        }
        let grant = delegator
            .make_reencryption_key(&provider_id, &domain, &category.type_tag(), &mut rng)
            .map_err(|e| LoadError::Setup(format!("re-encryption key: {e:?}")))?;
        proxy.install_key(grant.clone())?;
        patients.push(identity);
        records.push(ids);
        grants.push(grant);
    }
    store.sync()?;

    // Replicated topology: do not start measuring until every replica has
    // applied the whole setup upload, or early reads would count misses.
    if !config.read_replicas.is_empty() {
        let expected = store.record_count()?;
        for addr in &config.read_replicas {
            let mut replica = StoreClient::connect(addr.as_str(), &params, &client_config)?;
            let deadline = Instant::now() + Duration::from_secs(30);
            while replica.record_count()? < expected {
                if Instant::now() >= deadline {
                    return Err(LoadError::Setup(format!(
                        "replica {addr} did not catch up to {expected} records"
                    )));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }

    let fixture = Arc::new(Fixture {
        patients,
        records,
        grants,
        provider_id,
        category: category.clone(),
    });

    // --- Measurement: N clients, shared request budget. ------------------
    let zipf = Arc::new(Zipf::new(fixture.patients.len(), config.zipf_exponent));
    let issued = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let mut tallies: Vec<Tally> = Vec::new();
    std::thread::scope(|scope| -> Result<(), LoadError> {
        let mut workers = Vec::new();
        for client_index in 0..config.clients.max(1) {
            let fixture = Arc::clone(&fixture);
            let zipf = Arc::clone(&zipf);
            let issued = Arc::clone(&issued);
            let params = Arc::clone(&params);
            let provider_key = provider_key.clone();
            let client_config = client_config.clone();
            workers.push(scope.spawn(move || -> Result<Tally, LoadError> {
                let mut proxy =
                    ProxyClient::connect(config.proxy_addr.as_str(), &params, &client_config)?;
                let mut replicas: Vec<StoreClient> = config
                    .read_replicas
                    .iter()
                    .map(|addr| StoreClient::connect(addr.as_str(), &params, &client_config))
                    .collect::<Result<_, _>>()?;
                let provider = HealthcareProvider::new(provider_key);
                let mut rng = StdRng::seed_from_u64(config.seed ^ (0x9e37 + client_index as u64));
                let mut tally = Tally::default();
                let pace = config.open_rate.map(|rate| {
                    (
                        Duration::from_secs_f64(1.0 / rate.max(1e-6)),
                        Instant::now(),
                    )
                });
                let mut next_at = pace.map(|(_, now)| now);

                // Pipelined disclosure traffic claims a whole chunk of the
                // shared budget per round trip; lockstep mode and replica
                // reads claim one request at a time.
                let depth = if replicas.is_empty() {
                    config.pipeline.max(1) as u64
                } else {
                    1
                };
                loop {
                    let start = issued.fetch_add(depth, Ordering::Relaxed);
                    if start >= config.requests {
                        break;
                    }
                    let n = depth.min(config.requests - start);
                    if let (Some((interval, _)), Some(at)) = (pace, next_at.as_mut()) {
                        // Open loop: fixed arrival schedule regardless of
                        // response latency (a pipelined chunk covers `n`
                        // scheduled arrivals).
                        let now = Instant::now();
                        if *at > now {
                            std::thread::sleep(*at - now);
                        }
                        *at += interval * n as u32;
                    }

                    let picks: Vec<(usize, RecordId)> = (0..n)
                        .map(|_| {
                            let p = zipf.sample(&mut rng);
                            let ids = &fixture.records[p];
                            (p, ids[(rng.next_u64() as usize) % ids.len()])
                        })
                        .collect();

                    let begin = Instant::now();
                    if !replicas.is_empty() {
                        // Reads round-robin across the replica set; every
                        // write below still targets the primary.
                        let (_, id) = picks[0];
                        let which = (start as usize) % replicas.len();
                        match replicas[which].get(id) {
                            Ok(_) => tally.latencies_us.push(begin.elapsed().as_micros() as u64),
                            Err(ClientError::Remote(_)) => tally.denied += 1,
                            Err(_) => tally.errors += 1,
                        }
                    } else if n == 1 {
                        let (p, id) = picks[0];
                        match proxy.disclose(&fixture.patients[p], id, &fixture.provider_id) {
                            Ok(bundle) => match provider.open(&bundle) {
                                Ok(_) => {
                                    tally.latencies_us.push(begin.elapsed().as_micros() as u64)
                                }
                                Err(_) => tally.errors += 1,
                            },
                            Err(ClientError::Remote(_)) => tally.denied += 1,
                            Err(_) => tally.errors += 1,
                        }
                    } else {
                        let items: Vec<_> = picks
                            .iter()
                            .map(|&(p, id)| {
                                (fixture.patients[p].clone(), id, fixture.provider_id.clone())
                            })
                            .collect();
                        match proxy.disclose_pipelined(&items) {
                            Ok(outcomes) => {
                                // Responses land in request order or the run
                                // is broken: a bundle for the wrong record
                                // counts as reordered, not ok.
                                let elapsed_us = begin.elapsed().as_micros() as u64;
                                for (&(_, want), outcome) in picks.iter().zip(outcomes) {
                                    match outcome {
                                        Ok(bundle) if bundle.id != want => tally.reordered += 1,
                                        Ok(bundle) => match provider.open(&bundle) {
                                            Ok(_) => tally.latencies_us.push(elapsed_us),
                                            Err(_) => tally.errors += 1,
                                        },
                                        Err(_) => tally.denied += 1,
                                    }
                                }
                            }
                            Err(_) => tally.errors += n,
                        }
                    }

                    if config.churn_every > 0 {
                        // Grant/revoke churn riding along in the traffic:
                        // drop the hot patient's grant and restore it, once
                        // per cadence crossing inside the claimed chunk.
                        let crossings = (start..start + n)
                            .filter(|i| i % config.churn_every == config.churn_every - 1)
                            .count();
                        for _ in 0..crossings {
                            let hot = &fixture.patients[0];
                            proxy.revoke_key(hot, &fixture.category, &fixture.provider_id)?;
                            proxy.install_key(fixture.grants[0].clone())?;
                            tally.churn_ops += 2;
                        }
                    }
                }
                Ok(tally)
            }));
        }
        for worker in workers {
            match worker.join() {
                Ok(Ok(tally)) => tallies.push(tally),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(LoadError::Setup("a load client panicked".to_string())),
            }
        }
        Ok(())
    })?;
    let elapsed = started.elapsed();

    // --- Merge. ----------------------------------------------------------
    let mut latencies: Vec<u64> = tallies
        .iter()
        .flat_map(|t| t.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let percentile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let index = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[index]
    };
    let ok = latencies.len() as u64;
    let denied: u64 = tallies.iter().map(|t| t.denied).sum();
    Ok(LoadReport {
        ok,
        denied,
        errors: tallies.iter().map(|t| t.errors).sum(),
        reordered: tallies.iter().map(|t| t.reordered).sum(),
        churn_ops: tallies.iter().map(|t| t.churn_ops).sum(),
        elapsed,
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        req_per_sec: (ok + denied) as f64 / elapsed.as_secs_f64().max(1e-9),
        // Sampled after the measurement so the counters cover the whole run.
        sched: proxy.sched_stats().ok(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_tail_is_a_valid_distribution() {
        for &(n, s) in &[
            (1usize, 1.0f64),
            (16, 0.0),
            (16, 1.0),
            (16, 2.0),
            (64, 3.0),
            (8, 20.0),
        ] {
            let z = Zipf::new(n, s);
            assert_eq!(z.tail.len(), n, "n={n}, s={s}");
            assert_eq!(z.tail[0], 1.0, "n={n}, s={s}");
            for w in z.tail.windows(2) {
                assert!(w[0] >= w[1] && w[1] > 0.0, "n={n}, s={s}: {w:?}");
            }
            // The per-bucket masses tile [0, 1] exactly (up to rounding).
            let mass: f64 = (0..n)
                .map(|i| z.tail[i] - z.tail.get(i + 1).copied().unwrap_or(0.0))
                .sum();
            assert!((mass - 1.0).abs() < 1e-12, "n={n}, s={s}: mass {mass}");
        }
    }

    #[test]
    fn zipf_last_bucket_stays_reachable_at_high_skew() {
        // Regression: the forward-CDF construction rounded `cdf[i]` to 1.0
        // once the remaining mass fell below an ulp, so at high skew the
        // last buckets could never be drawn.  The tail representation keeps
        // their mass positive; prove reachability by evaluating the
        // sampler's own search at the exact boundary value instead of
        // waiting for an astronomically unlikely draw.
        for &(n, s) in &[(16usize, 2.0f64), (16, 4.0), (8, 20.0), (64, 6.0)] {
            let z = Zipf::new(n, s);
            assert!(z.tail[n - 1] > 0.0, "n={n}, s={s}: last mass underflowed");
            let idx = z.tail.partition_point(|&t| t >= z.tail[n - 1]) - 1;
            assert_eq!(idx, n - 1, "n={n}, s={s}: last bucket unreachable");
        }
    }

    #[test]
    fn zipf_samples_stay_in_range_and_match_the_analytic_masses() {
        // No out-of-range index, whatever the rng produces.
        let z = Zipf::new(5, 3.0);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20_000 {
            assert!(z.sample(&mut rng) < 5);
        }

        // Empirical frequencies track 1/k^s at moderate skew.
        let (n, s) = (8usize, 1.0f64);
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(7);
        let draws = 200_000u64;
        let mut hist = vec![0u64; n];
        for _ in 0..draws {
            hist[z.sample(&mut rng)] += 1;
        }
        let total: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        for (k, &count) in hist.iter().enumerate() {
            let expect = ((k + 1) as f64).powf(-s) / total;
            let got = count as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "bucket {k}: got {got:.4}, expected {expect:.4}"
            );
        }
        // Every bucket of a small uniform distribution gets hit.
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
