//! Process-global scheduler counters, in the mold of the PHR crate's
//! engine metrics: relaxed atomics the hot path bumps for free, snapshotted
//! on demand by the `SchedStats` protocol request.
//!
//! The counters are process-global rather than per-node: a deployment runs
//! one node per process, and the in-process multi-node test topologies only
//! ever run one *scheduler* (the proxy's), so the aggregate stays readable.

use std::sync::atomic::{AtomicU64, Ordering};
use tibpre_client::SchedStatsReport;

static BATCHES: AtomicU64 = AtomicU64::new(0);
static BATCHED_REQUESTS: AtomicU64 = AtomicU64::new(0);
static BYPASS: AtomicU64 = AtomicU64::new(0);
static QUEUE_DEPTH: AtomicU64 = AtomicU64::new(0);
static QUEUE_PEAK: AtomicU64 = AtomicU64::new(0);

const HIST_BUCKETS: usize = 8;
static HIST: [AtomicU64; HIST_BUCKETS] = [const { AtomicU64::new(0) }; HIST_BUCKETS];

/// The histogram bucket for a batch of `size` requests: buckets cover
/// `1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+` (matching the documentation
/// on [`SchedStatsReport`]).
fn bucket(size: usize) -> usize {
    if size <= 1 {
        0
    } else {
        (((size - 1).ilog2() as usize) + 1).min(HIST_BUCKETS - 1)
    }
}

/// Records one executed scheduler batch of `size` requests.
pub(crate) fn note_batch(size: usize) {
    BATCHES.fetch_add(1, Ordering::Relaxed);
    BATCHED_REQUESTS.fetch_add(size as u64, Ordering::Relaxed);
    HIST[bucket(size)].fetch_add(1, Ordering::Relaxed);
}

/// Records one request answered inline, bypassing the scheduler queue.
pub(crate) fn note_bypass() {
    BYPASS.fetch_add(1, Ordering::Relaxed);
}

/// Records the submission-queue depth observed after an enqueue or drain.
pub(crate) fn note_queue_depth(depth: usize) {
    let depth = depth as u64;
    QUEUE_DEPTH.store(depth, Ordering::Relaxed);
    QUEUE_PEAK.fetch_max(depth, Ordering::Relaxed);
}

/// A snapshot of the scheduler counters, in the shape the `SchedStats`
/// protocol request answers with.
pub fn sched_snapshot() -> SchedStatsReport {
    let mut hist = [0u64; HIST_BUCKETS];
    for (out, bucket) in hist.iter_mut().zip(&HIST) {
        *out = bucket.load(Ordering::Relaxed);
    }
    SchedStatsReport {
        batches: BATCHES.load(Ordering::Relaxed),
        batched_requests: BATCHED_REQUESTS.load(Ordering::Relaxed),
        bypass: BYPASS.load(Ordering::Relaxed),
        queue_depth: QUEUE_DEPTH.load(Ordering::Relaxed),
        queue_peak: QUEUE_PEAK.load(Ordering::Relaxed),
        hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_documented_ranges() {
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 2);
        assert_eq!(bucket(5), 3);
        assert_eq!(bucket(8), 3);
        assert_eq!(bucket(9), 4);
        assert_eq!(bucket(16), 4);
        assert_eq!(bucket(17), 5);
        assert_eq!(bucket(32), 5);
        assert_eq!(bucket(33), 6);
        assert_eq!(bucket(64), 6);
        assert_eq!(bucket(65), 7);
        assert_eq!(bucket(10_000), 7);
    }

    #[test]
    fn counters_accumulate_into_the_snapshot() {
        // Process-global state: assert on deltas, not absolutes, so this
        // test composes with everything else in the binary.
        let before = sched_snapshot();
        note_batch(4);
        note_bypass();
        note_queue_depth(9);
        let after = sched_snapshot();
        assert_eq!(after.batches, before.batches + 1);
        assert_eq!(after.batched_requests, before.batched_requests + 4);
        assert_eq!(after.bypass, before.bypass + 1);
        assert!(after.queue_peak >= 9);
        assert_eq!(after.hist[bucket(4)], before.hist[bucket(4)] + 1);
    }
}
