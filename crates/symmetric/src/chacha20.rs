//! The ChaCha20 stream cipher (IETF variant: 256-bit key, 96-bit nonce,
//! 32-bit initial block counter).
//!
//! Only the keystream generator and XOR application are provided here; the
//! authenticated construction lives in [`crate::aead`].

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;
/// Block size of the keystream in bytes.
pub const BLOCK_LEN: usize = 64;

/// The ChaCha20 sigma constant, "expand 32-byte k" as four little-endian words.
const SIGMA: [u32; 4] = [
    u32::from_le_bytes(*b"expa"),
    u32::from_le_bytes(*b"nd 3"),
    u32::from_le_bytes(*b"2-by"),
    u32::from_le_bytes(*b"te k"),
];

/// A ChaCha20 cipher instance bound to a key and nonce.
#[derive(Clone)]
pub struct ChaCha20 {
    key_words: [u32; 8],
    nonce_words: [u32; 3],
}

impl ChaCha20 {
    /// Creates a cipher instance from a 32-byte key and a 12-byte nonce.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        let mut key_words = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            key_words[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut nonce_words = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            nonce_words[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha20 {
            key_words,
            nonce_words,
        }
    }

    /// Generates the 64-byte keystream block for the given counter value.
    pub fn keystream_block(&self, counter: u32) -> [u8; BLOCK_LEN] {
        let mut state = [0u32; 16];
        state[0..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key_words);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce_words);

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }

        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream (starting at block `initial_counter`) into `data` in place.
    ///
    /// Applying the same operation twice recovers the original data.
    pub fn apply_keystream(&self, initial_counter: u32, data: &mut [u8]) {
        for (block_index, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
            let counter = initial_counter.wrapping_add(block_index as u32);
            let keystream = self.keystream_block(counter);
            for (byte, ks) in chunk.iter_mut().zip(keystream.iter()) {
                *byte ^= ks;
            }
        }
    }

    /// Convenience: encrypts/decrypts `data` into a new vector starting at counter 1
    /// (counter 0 is conventionally reserved for deriving one-time MAC keys).
    pub fn process(&self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply_keystream(1, &mut out);
        out
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> ChaCha20 {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = core::array::from_fn(|i| (i * 7) as u8);
        ChaCha20::new(&key, &nonce)
    }

    #[test]
    fn quarter_round_rfc_vector() {
        // RFC 7539 §2.1.1 test vector for the quarter round.
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }

    #[test]
    fn keystream_is_deterministic_and_counter_dependent() {
        let c = cipher();
        assert_eq!(c.keystream_block(0), c.keystream_block(0));
        assert_ne!(c.keystream_block(0), c.keystream_block(1));
        assert_ne!(c.keystream_block(1), c.keystream_block(2));
    }

    #[test]
    fn keystream_depends_on_key_and_nonce() {
        let key_a = [1u8; 32];
        let key_b = [2u8; 32];
        let nonce_a = [3u8; 12];
        let nonce_b = [4u8; 12];
        let base = ChaCha20::new(&key_a, &nonce_a).keystream_block(0);
        assert_ne!(base, ChaCha20::new(&key_b, &nonce_a).keystream_block(0));
        assert_ne!(base, ChaCha20::new(&key_a, &nonce_b).keystream_block(0));
    }

    #[test]
    fn round_trip_various_lengths() {
        let c = cipher();
        for len in [0usize, 1, 63, 64, 65, 127, 128, 1000, 4096] {
            let plaintext: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
            let ciphertext = c.process(&plaintext);
            assert_eq!(c.process(&ciphertext), plaintext, "len {len}");
            if len > 0 {
                assert_ne!(ciphertext, plaintext, "len {len}");
            }
        }
    }

    #[test]
    fn apply_keystream_is_position_dependent() {
        let c = cipher();
        let mut a = vec![0u8; 128];
        let mut b = vec![0u8; 128];
        c.apply_keystream(1, &mut a);
        c.apply_keystream(2, &mut b);
        // Starting one block later shifts the keystream by one block.
        assert_eq!(&a[64..128], &b[0..64]);
        assert_ne!(&a[0..64], &b[0..64]);
    }

    #[test]
    fn keystream_blocks_have_no_obvious_bias() {
        // Count ones across a few keystream blocks; expect roughly half.
        let c = cipher();
        let mut ones = 0u32;
        for ctr in 0..16u32 {
            ones += c
                .keystream_block(ctr)
                .iter()
                .map(|b| b.count_ones())
                .sum::<u32>();
        }
        let total_bits = 16 * 64 * 8;
        let ratio = ones as f64 / total_bits as f64;
        assert!(ratio > 0.45 && ratio < 0.55, "bit ratio {ratio}");
    }
}
