//! Symmetric primitives for the TIB-PRE hybrid (KEM/DEM) mode.
//!
//! The paper encrypts messages that are elements of the pairing target group.
//! Real personal-health-record payloads are byte strings, so `tibpre-core`
//! exposes a hybrid mode: the scheme encapsulates a random group element, a KDF
//! turns it into symmetric keys, and this crate's data-encapsulation mechanism
//! (DEM) encrypts the payload:
//!
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 7539 flavour: 256-bit key,
//!   96-bit nonce, 32-bit block counter), implemented from scratch,
//! * [`aead`] — encrypt-then-MAC authenticated encryption combining ChaCha20
//!   with HMAC-SHA-256, with associated data support.
//!
//! As with the rest of the workspace, implementations favour clarity; the DEM
//! is never the bottleneck next to pairing operations, yet still processes
//! megabytes per second, which is plenty for the PHR workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod error;

pub use aead::{AeadCiphertext, AeadKey};
pub use chacha20::ChaCha20;
pub use error::SymmetricError;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, SymmetricError>;
