//! Encrypt-then-MAC authenticated encryption: ChaCha20 + HMAC-SHA-256.
//!
//! The construction derives independent encryption and MAC keys from the AEAD
//! key with HKDF, encrypts with ChaCha20, and MACs
//! `nonce || len(aad) || aad || ciphertext` with HMAC-SHA-256.  Decryption
//! verifies the tag before touching the ciphertext.

use crate::chacha20::{ChaCha20, KEY_LEN, NONCE_LEN};
use crate::error::SymmetricError;
use crate::Result;
use rand::{CryptoRng, RngCore};
use tibpre_hash::{Hkdf, HmacSha256};

/// Authentication tag length in bytes.
pub const TAG_LEN: usize = 32;

/// A 256-bit AEAD key.
#[derive(Clone, PartialEq, Eq)]
pub struct AeadKey {
    bytes: [u8; KEY_LEN],
}

impl AeadKey {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        AeadKey { bytes }
    }

    /// Derives a key from arbitrary input keying material (e.g. the canonical
    /// encoding of a pairing target-group element) and a context string.
    pub fn derive(ikm: &[u8], context: &str) -> Self {
        let okm = Hkdf::derive(b"tibpre-aead-key", ikm, context.as_bytes(), KEY_LEN);
        let mut bytes = [0u8; KEY_LEN];
        bytes.copy_from_slice(&okm);
        AeadKey { bytes }
    }

    /// Samples a uniformly random key.
    pub fn random<R: RngCore + CryptoRng>(rng: &mut R) -> Self {
        let mut bytes = [0u8; KEY_LEN];
        rng.fill_bytes(&mut bytes);
        AeadKey { bytes }
    }

    /// Raw key bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.bytes
    }

    fn subkeys(&self) -> ([u8; KEY_LEN], [u8; KEY_LEN]) {
        let okm = Hkdf::derive(b"tibpre-aead-subkeys", &self.bytes, b"enc|mac", KEY_LEN * 2);
        let mut enc = [0u8; KEY_LEN];
        let mut mac = [0u8; KEY_LEN];
        enc.copy_from_slice(&okm[..KEY_LEN]);
        mac.copy_from_slice(&okm[KEY_LEN..]);
        (enc, mac)
    }

    /// Encrypts `plaintext` with associated data `aad`, using a freshly sampled nonce.
    pub fn seal<R: RngCore + CryptoRng>(
        &self,
        rng: &mut R,
        plaintext: &[u8],
        aad: &[u8],
    ) -> AeadCiphertext {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        self.seal_with_nonce(nonce, plaintext, aad)
    }

    /// Encrypts with an explicit nonce (exposed for deterministic tests).
    pub fn seal_with_nonce(
        &self,
        nonce: [u8; NONCE_LEN],
        plaintext: &[u8],
        aad: &[u8],
    ) -> AeadCiphertext {
        let (enc_key, mac_key) = self.subkeys();
        let cipher = ChaCha20::new(&enc_key, &nonce);
        let body = cipher.process(plaintext);
        let tag = Self::compute_tag(&mac_key, &nonce, aad, &body);
        AeadCiphertext { nonce, body, tag }
    }

    /// Verifies and decrypts a ciphertext.
    pub fn open(&self, ciphertext: &AeadCiphertext, aad: &[u8]) -> Result<Vec<u8>> {
        let (enc_key, mac_key) = self.subkeys();
        let expected = Self::compute_tag(&mac_key, &ciphertext.nonce, aad, &ciphertext.body);
        if !constant_time_eq(&expected, &ciphertext.tag) {
            return Err(SymmetricError::AuthenticationFailed);
        }
        let cipher = ChaCha20::new(&enc_key, &ciphertext.nonce);
        Ok(cipher.process(&ciphertext.body))
    }

    fn compute_tag(
        mac_key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        body: &[u8],
    ) -> [u8; TAG_LEN] {
        let mut mac = HmacSha256::new(mac_key);
        mac.update(nonce);
        mac.update(&(aad.len() as u64).to_be_bytes());
        mac.update(aad);
        mac.update(&(body.len() as u64).to_be_bytes());
        mac.update(body);
        mac.finalize()
    }
}

impl core::fmt::Debug for AeadKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        write!(f, "AeadKey(..)")
    }
}

/// An authenticated ciphertext: nonce, encrypted body and tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AeadCiphertext {
    /// The per-message nonce.
    pub nonce: [u8; NONCE_LEN],
    /// The ChaCha20-encrypted payload.
    pub body: Vec<u8>,
    /// The HMAC-SHA-256 tag over nonce, associated data and body.
    pub tag: [u8; TAG_LEN],
}

impl AeadCiphertext {
    /// Total serialized length in bytes.
    pub fn serialized_len(&self) -> usize {
        NONCE_LEN + 8 + self.body.len() + TAG_LEN
    }

    /// Serializes as `nonce || body_len(u64 BE) || body || tag`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&(self.body.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.body);
        out.extend_from_slice(&self.tag);
        out
    }

    /// Parses the serialization produced by [`Self::to_bytes`], rejecting
    /// trailing bytes (delegates to the wire codec).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        tibpre_wire::decode_bare(bytes, tibpre_wire::WireVersion::V0, &())
            .map_err(|_| SymmetricError::MalformedCiphertext("undecodable AEAD ciphertext"))
    }
}

impl tibpre_wire::WireEncode for AeadCiphertext {
    /// `nonce ‖ body_len(u64 BE) ‖ body ‖ tag` — identical in every wire
    /// version (nothing here is a group element).
    fn encode(&self, w: &mut tibpre_wire::Writer) {
        w.put_slice(&self.nonce);
        w.put_u64(self.body.len() as u64);
        w.put_slice(&self.body);
        w.put_slice(&self.tag);
    }
}

impl tibpre_wire::WireDecode for AeadCiphertext {
    type Ctx = ();

    fn decode(
        r: &mut tibpre_wire::Reader<'_>,
        _ctx: &(),
    ) -> core::result::Result<Self, tibpre_wire::DecodeError> {
        let nonce: [u8; NONCE_LEN] = r.take(NONCE_LEN)?.try_into().expect("fixed length");
        let body_len = r.u64()? as usize;
        let body = r.take(body_len)?.to_vec();
        let tag: [u8; TAG_LEN] = r.take(TAG_LEN)?.try_into().expect("fixed length");
        Ok(AeadCiphertext { nonce, body, tag })
    }
}

fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn round_trip_with_aad() {
        let mut r = rng();
        let key = AeadKey::random(&mut r);
        let ct = key.seal(&mut r, b"attack at dawn", b"record-header");
        let pt = key.open(&ct, b"record-header").unwrap();
        assert_eq!(pt, b"attack at dawn");
    }

    #[test]
    fn wrong_aad_rejected() {
        let mut r = rng();
        let key = AeadKey::random(&mut r);
        let ct = key.seal(&mut r, b"payload", b"aad-1");
        assert_eq!(
            key.open(&ct, b"aad-2").unwrap_err(),
            SymmetricError::AuthenticationFailed
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let mut r = rng();
        let key = AeadKey::random(&mut r);
        let other = AeadKey::random(&mut r);
        let ct = key.seal(&mut r, b"payload", b"");
        assert!(other.open(&ct, b"").is_err());
    }

    #[test]
    fn tampering_detected_everywhere() {
        let mut r = rng();
        let key = AeadKey::random(&mut r);
        let ct = key.seal(&mut r, b"super secret data", b"aad");
        // Flip one bit in the body.
        let mut tampered = ct.clone();
        tampered.body[3] ^= 0x01;
        assert!(key.open(&tampered, b"aad").is_err());
        // Flip one bit in the tag.
        let mut tampered = ct.clone();
        tampered.tag[0] ^= 0x80;
        assert!(key.open(&tampered, b"aad").is_err());
        // Flip one bit in the nonce.
        let mut tampered = ct.clone();
        tampered.nonce[0] ^= 0x01;
        assert!(key.open(&tampered, b"aad").is_err());
        // Untouched ciphertext still opens.
        assert!(key.open(&ct, b"aad").is_ok());
    }

    #[test]
    fn empty_plaintext_and_aad() {
        let mut r = rng();
        let key = AeadKey::random(&mut r);
        let ct = key.seal(&mut r, b"", b"");
        assert_eq!(key.open(&ct, b"").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn serialization_round_trip() {
        let mut r = rng();
        let key = AeadKey::random(&mut r);
        let ct = key.seal(&mut r, b"serialize me", b"hdr");
        let bytes = ct.to_bytes();
        assert_eq!(bytes.len(), ct.serialized_len());
        let parsed = AeadCiphertext::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, ct);
        assert_eq!(key.open(&parsed, b"hdr").unwrap(), b"serialize me");
    }

    #[test]
    fn malformed_serializations_rejected() {
        assert!(AeadCiphertext::from_bytes(&[]).is_err());
        assert!(AeadCiphertext::from_bytes(&[0u8; 10]).is_err());
        let mut r = rng();
        let key = AeadKey::random(&mut r);
        let mut bytes = key.seal(&mut r, b"x", b"").to_bytes();
        bytes.push(0); // trailing garbage
        assert!(AeadCiphertext::from_bytes(&bytes).is_err());
        bytes.pop();
        bytes.truncate(bytes.len() - 1); // truncated tag
        assert!(AeadCiphertext::from_bytes(&bytes).is_err());
    }

    #[test]
    fn derived_keys_are_context_separated() {
        let a = AeadKey::derive(b"shared secret", "context-a");
        let b = AeadKey::derive(b"shared secret", "context-b");
        let c = AeadKey::derive(b"shared secret", "context-a");
        assert_ne!(a.as_bytes(), b.as_bytes());
        assert_eq!(a.as_bytes(), c.as_bytes());
    }

    #[test]
    fn distinct_nonces_give_distinct_ciphertexts() {
        let mut r = rng();
        let key = AeadKey::random(&mut r);
        let c1 = key.seal(&mut r, b"same message", b"");
        let c2 = key.seal(&mut r, b"same message", b"");
        assert_ne!(c1.nonce, c2.nonce);
        assert_ne!(c1.body, c2.body);
    }

    #[test]
    fn deterministic_with_fixed_nonce() {
        let key = AeadKey::from_bytes([9u8; 32]);
        let nonce = [1u8; NONCE_LEN];
        let c1 = key.seal_with_nonce(nonce, b"msg", b"aad");
        let c2 = key.seal_with_nonce(nonce, b"msg", b"aad");
        assert_eq!(c1, c2);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let key = AeadKey::from_bytes([0x42u8; 32]);
        let dbg = format!("{key:?}");
        assert!(!dbg.contains("42"));
    }
}
