//! Error type for the symmetric layer.

use core::fmt;

/// Errors produced by the symmetric (DEM) layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymmetricError {
    /// The authentication tag did not verify; the ciphertext was rejected.
    AuthenticationFailed,
    /// A key, nonce or tag had the wrong length.
    InvalidLength {
        /// What was being decoded.
        what: &'static str,
        /// Expected length in bytes.
        expected: usize,
        /// Actual length in bytes.
        actual: usize,
    },
    /// A serialized ciphertext was malformed.
    MalformedCiphertext(&'static str),
}

impl fmt::Display for SymmetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymmetricError::AuthenticationFailed => {
                write!(f, "authentication tag mismatch: ciphertext rejected")
            }
            SymmetricError::InvalidLength {
                what,
                expected,
                actual,
            } => write!(
                f,
                "invalid {what} length: expected {expected}, got {actual}"
            ),
            SymmetricError::MalformedCiphertext(why) => {
                write!(f, "malformed ciphertext: {why}")
            }
        }
    }
}

impl std::error::Error for SymmetricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SymmetricError::AuthenticationFailed
            .to_string()
            .contains("rejected"));
        let err = SymmetricError::InvalidLength {
            what: "key",
            expected: 32,
            actual: 16,
        };
        assert!(err.to_string().contains("32"));
        assert!(err.to_string().contains("16"));
    }
}
