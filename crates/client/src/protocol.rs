//! The node protocol: every request a client can put on the wire and every
//! response a node can send back.
//!
//! One protocol serves all three roles — a KGC node answers the key requests,
//! a store node the record requests, a proxy node the disclosure requests —
//! and every role answers [`Request::Ping`] and [`Request::Shutdown`].  A
//! request outside a node's role draws [`RemoteError::WrongRole`], never a
//! closed connection, so a misconfigured client gets a diagnosis instead of a
//! hangup.
//!
//! Messages travel as length-prefixed frames ([`tibpre_wire::framing`])
//! whose payload is the versioned-envelope encoding of one `Request` or
//! `Response`.  Pairing parameters never travel: client and node are
//! configured with the same [`SecurityLevel`] and reconstruct them from the
//! deterministic cache ([`PairingParams::cached`]); the level travels in
//! [`Response::Pong`] so a mismatch is caught by the first health check
//! rather than by a point failing subgroup validation mid-workflow.

use std::sync::Arc;
use tibpre_core::{HybridCiphertext, ReEncryptionKey};
use tibpre_ibe::{IbePrivateKey, IbePublicParams, Identity};
use tibpre_pairing::{DecodeCtx, PairingParams, SecurityLevel};
use tibpre_phr::proxy_service::DisclosureBundle;
use tibpre_phr::store::StoredRecord;
use tibpre_phr::{AuditEvent, Category, PhrError, RecordId};
use tibpre_wire::{DecodeError, Reader, WireDecode, WireEncode, Writer};

/// The three service roles a node can run as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Key Generation Centre: `Setup`/`Extract` of one KGC domain.
    Kgc,
    /// Semi-trusted proxy: holds re-encryption keys, transforms ciphertexts.
    Proxy,
    /// Encrypted record store: the outsourced PHR database.
    Store,
}

impl NodeRole {
    /// The role's CLI / wire name.
    pub fn name(self) -> &'static str {
        match self {
            NodeRole::Kgc => "kgc",
            NodeRole::Proxy => "proxy",
            NodeRole::Store => "store",
        }
    }

    /// Parses a role name (the inverse of [`Self::name`]).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "kgc" => Some(NodeRole::Kgc),
            "proxy" => Some(NodeRole::Proxy),
            "store" => Some(NodeRole::Store),
            _ => None,
        }
    }

    fn tag(self) -> u8 {
        match self {
            NodeRole::Kgc => 1,
            NodeRole::Proxy => 2,
            NodeRole::Store => 3,
        }
    }

    fn from_tag(offset: usize, tag: u8) -> Result<Self, DecodeError> {
        match tag {
            1 => Ok(NodeRole::Kgc),
            2 => Ok(NodeRole::Proxy),
            3 => Ok(NodeRole::Store),
            _ => Err(DecodeError::invalid_tag(offset, "node role", tag)),
        }
    }
}

/// The configured security level's wire/CLI name.
pub fn level_name(level: SecurityLevel) -> &'static str {
    match level {
        SecurityLevel::Toy => "toy",
        SecurityLevel::Low80 => "low80",
        SecurityLevel::Medium112 => "medium112",
        SecurityLevel::High128 => "high128",
    }
}

/// Parses a security-level name (the inverse of [`level_name`]).
pub fn level_from_name(name: &str) -> Option<SecurityLevel> {
    match name {
        "toy" => Some(SecurityLevel::Toy),
        "low80" => Some(SecurityLevel::Low80),
        "medium112" => Some(SecurityLevel::Medium112),
        "high128" => Some(SecurityLevel::High128),
        _ => None,
    }
}

/// The pairing parameters for a named level — [`PairingParams::cached`] for
/// the real levels, the toy cache for `toy`.
pub fn params_for_level(level: SecurityLevel) -> Arc<PairingParams> {
    match level {
        SecurityLevel::Toy => PairingParams::insecure_toy(),
        other => PairingParams::cached(other),
    }
}

/// One request frame, client → node.
#[derive(Debug, Clone)]
pub enum Request {
    /// Health check; every role answers with [`Response::Pong`].
    Ping,
    /// Ask the node to drain and exit; answered with
    /// [`Response::ShuttingDown`] before the listener closes.
    Shutdown,
    /// (KGC) The domain's public parameters.
    PublicParams,
    /// (KGC) `Extract`: the private key for an identity.
    Extract {
        /// The identity to extract for.
        identity: Identity,
    },
    /// (Store) Store an encrypted record; the node assigns the id.
    PutRecord {
        /// The owning patient.
        patient: Identity,
        /// The record category.
        category: Category,
        /// The non-secret title.
        title: String,
        /// The category-typed hybrid ciphertext.
        ciphertext: Box<HybridCiphertext>,
    },
    /// (Store) Fetch one record by id.
    GetRecord {
        /// The record to fetch.
        id: RecordId,
    },
    /// (Store) Delete one record.
    DeleteRecord {
        /// The record to delete.
        id: RecordId,
        /// Who asked (for the audit trail).
        requester: Identity,
    },
    /// (Store) List a patient's record ids, optionally per category.
    ListRecords {
        /// The owning patient.
        patient: Identity,
        /// `None` lists every category.
        category: Option<Category>,
    },
    /// (Store) Total number of records.
    RecordCount,
    /// (Store) Force WAL durability for everything accepted so far.
    Sync,
    /// (Store) The store's audit trail.
    AuditSnapshot,
    /// (Store) Record a disclosure attempt in the audit trail.
    LogDisclosure {
        /// The disclosed record.
        id: RecordId,
        /// Who asked.
        requester: Identity,
        /// Whether the disclosure was granted.
        granted: bool,
    },
    /// (Store) Record a policy change in the audit trail.
    LogPolicyChange {
        /// The owning patient.
        patient: Identity,
        /// The category granted or revoked.
        category: Category,
        /// The grantee.
        grantee: Identity,
        /// `true` for a grant, `false` for a revocation.
        granted: bool,
    },
    /// (Proxy) Install a re-encryption key (a patient granting access).
    InstallKey {
        /// The key to install.
        key: Box<ReEncryptionKey>,
    },
    /// (Proxy) Remove a re-encryption key (revocation).
    RevokeKey {
        /// The delegating patient.
        patient: Identity,
        /// The delegated category.
        category: Category,
        /// The grantee losing access.
        grantee: Identity,
    },
    /// (Proxy) Whether a grant is active.
    HasGrant {
        /// The delegating patient.
        patient: Identity,
        /// The delegated category.
        category: Category,
        /// The grantee.
        grantee: Identity,
    },
    /// (Proxy) Number of installed re-encryption keys.
    KeyCount,
    /// (Proxy) Re-encrypt one record for a requester.
    Disclose {
        /// The owning patient.
        patient: Identity,
        /// The record to disclose.
        id: RecordId,
        /// The requesting provider.
        requester: Identity,
    },
    /// (Proxy) Re-encrypt every record of one category for a requester.
    DiscloseCategory {
        /// The owning patient.
        patient: Identity,
        /// The category to disclose.
        category: Category,
        /// The requesting provider.
        requester: Identity,
    },
    /// (Store) Turn this connection into a replication stream: the node
    /// stops speaking request→response and pushes [`Response::ReplicaStatus`],
    /// [`Response::SnapshotGeneration`] and [`Response::SegmentChunk`]
    /// frames until the connection drops.
    SubscribeReplication {
        /// Per-shard applied logical WAL offsets to resume from.  Empty
        /// means a fresh replica: the node's first `ReplicaStatus` tells it
        /// the shard count, and streaming starts from offset 0 (or the
        /// newest snapshot when the log prefix was garbage-collected).
        applied: Vec<u64>,
    },
    /// (Store) One-shot replication status: per-shard positions (committed
    /// on a primary, applied on a replica) and whether the node accepts
    /// writes.
    ReplicationStatus,
    /// (Store) Promote a replica: stop rejecting writes with `WrongRole`.
    /// A no-op on a node that already accepts writes.
    Promote,
    /// Batch-scheduler counters (every role answers; the counters are
    /// process-global, so a node without a scheduler reports zeros).
    SchedStats,
}

impl Request {
    /// The variant's short name, for logs and error messages (a `Debug`
    /// rendering would dump whole ciphertexts).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "Ping",
            Request::Shutdown => "Shutdown",
            Request::PublicParams => "PublicParams",
            Request::Extract { .. } => "Extract",
            Request::PutRecord { .. } => "PutRecord",
            Request::GetRecord { .. } => "GetRecord",
            Request::DeleteRecord { .. } => "DeleteRecord",
            Request::ListRecords { .. } => "ListRecords",
            Request::RecordCount => "RecordCount",
            Request::Sync => "Sync",
            Request::AuditSnapshot => "AuditSnapshot",
            Request::LogDisclosure { .. } => "LogDisclosure",
            Request::LogPolicyChange { .. } => "LogPolicyChange",
            Request::InstallKey { .. } => "InstallKey",
            Request::RevokeKey { .. } => "RevokeKey",
            Request::HasGrant { .. } => "HasGrant",
            Request::KeyCount => "KeyCount",
            Request::Disclose { .. } => "Disclose",
            Request::DiscloseCategory { .. } => "DiscloseCategory",
            Request::SubscribeReplication { .. } => "SubscribeReplication",
            Request::ReplicationStatus => "ReplicationStatus",
            Request::Promote => "Promote",
            Request::SchedStats => "SchedStats",
        }
    }
}

mod req_tag {
    pub const PING: u8 = 1;
    pub const SHUTDOWN: u8 = 2;
    pub const PUBLIC_PARAMS: u8 = 3;
    pub const EXTRACT: u8 = 4;
    pub const PUT_RECORD: u8 = 10;
    pub const GET_RECORD: u8 = 11;
    pub const DELETE_RECORD: u8 = 12;
    pub const LIST_RECORDS: u8 = 13;
    pub const RECORD_COUNT: u8 = 14;
    pub const SYNC: u8 = 15;
    pub const AUDIT_SNAPSHOT: u8 = 16;
    pub const LOG_DISCLOSURE: u8 = 17;
    pub const LOG_POLICY_CHANGE: u8 = 18;
    pub const INSTALL_KEY: u8 = 30;
    pub const REVOKE_KEY: u8 = 31;
    pub const HAS_GRANT: u8 = 32;
    pub const KEY_COUNT: u8 = 33;
    pub const DISCLOSE: u8 = 34;
    pub const DISCLOSE_CATEGORY: u8 = 35;
    pub const SUBSCRIBE_REPLICATION: u8 = 40;
    pub const REPLICATION_STATUS: u8 = 41;
    pub const PROMOTE: u8 = 42;
    pub const SCHED_STATS: u8 = 43;
}

fn put_identity(w: &mut Writer, id: &Identity) {
    w.put_bytes(id.as_bytes());
}

fn read_identity(r: &mut Reader<'_>) -> Result<Identity, DecodeError> {
    Ok(Identity::from_bytes(r.bytes()?.to_vec()))
}

fn put_category(w: &mut Writer, category: &Category) {
    w.put_bytes(category.label().as_bytes());
}

fn read_category(r: &mut Reader<'_>) -> Result<Category, DecodeError> {
    Ok(Category::from_label(&r.string()?))
}

fn put_bool(w: &mut Writer, b: bool) {
    w.put_u8(u8::from(b));
}

fn read_bool(r: &mut Reader<'_>) -> Result<bool, DecodeError> {
    let offset = r.offset();
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(DecodeError::invalid_tag(offset, "boolean", tag)),
    }
}

impl WireEncode for Request {
    fn encode(&self, w: &mut Writer) {
        match self {
            Request::Ping => w.put_u8(req_tag::PING),
            Request::Shutdown => w.put_u8(req_tag::SHUTDOWN),
            Request::PublicParams => w.put_u8(req_tag::PUBLIC_PARAMS),
            Request::Extract { identity } => {
                w.put_u8(req_tag::EXTRACT);
                put_identity(w, identity);
            }
            Request::PutRecord {
                patient,
                category,
                title,
                ciphertext,
            } => {
                w.put_u8(req_tag::PUT_RECORD);
                put_identity(w, patient);
                put_category(w, category);
                w.put_bytes(title.as_bytes());
                w.put_nested(|w| ciphertext.encode(w));
            }
            Request::GetRecord { id } => {
                w.put_u8(req_tag::GET_RECORD);
                w.put_u64(id.0);
            }
            Request::DeleteRecord { id, requester } => {
                w.put_u8(req_tag::DELETE_RECORD);
                w.put_u64(id.0);
                put_identity(w, requester);
            }
            Request::ListRecords { patient, category } => {
                w.put_u8(req_tag::LIST_RECORDS);
                put_identity(w, patient);
                match category {
                    None => w.put_u8(0),
                    Some(category) => {
                        w.put_u8(1);
                        put_category(w, category);
                    }
                }
            }
            Request::RecordCount => w.put_u8(req_tag::RECORD_COUNT),
            Request::Sync => w.put_u8(req_tag::SYNC),
            Request::AuditSnapshot => w.put_u8(req_tag::AUDIT_SNAPSHOT),
            Request::LogDisclosure {
                id,
                requester,
                granted,
            } => {
                w.put_u8(req_tag::LOG_DISCLOSURE);
                w.put_u64(id.0);
                put_identity(w, requester);
                put_bool(w, *granted);
            }
            Request::LogPolicyChange {
                patient,
                category,
                grantee,
                granted,
            } => {
                w.put_u8(req_tag::LOG_POLICY_CHANGE);
                put_identity(w, patient);
                put_category(w, category);
                put_identity(w, grantee);
                put_bool(w, *granted);
            }
            Request::InstallKey { key } => {
                w.put_u8(req_tag::INSTALL_KEY);
                w.put_nested(|w| key.encode(w));
            }
            Request::RevokeKey {
                patient,
                category,
                grantee,
            } => {
                w.put_u8(req_tag::REVOKE_KEY);
                put_identity(w, patient);
                put_category(w, category);
                put_identity(w, grantee);
            }
            Request::HasGrant {
                patient,
                category,
                grantee,
            } => {
                w.put_u8(req_tag::HAS_GRANT);
                put_identity(w, patient);
                put_category(w, category);
                put_identity(w, grantee);
            }
            Request::KeyCount => w.put_u8(req_tag::KEY_COUNT),
            Request::Disclose {
                patient,
                id,
                requester,
            } => {
                w.put_u8(req_tag::DISCLOSE);
                put_identity(w, patient);
                w.put_u64(id.0);
                put_identity(w, requester);
            }
            Request::DiscloseCategory {
                patient,
                category,
                requester,
            } => {
                w.put_u8(req_tag::DISCLOSE_CATEGORY);
                put_identity(w, patient);
                put_category(w, category);
                put_identity(w, requester);
            }
            Request::SubscribeReplication { applied } => {
                w.put_u8(req_tag::SUBSCRIBE_REPLICATION);
                w.put_u64(applied.len() as u64);
                for offset in applied {
                    w.put_u64(*offset);
                }
            }
            Request::ReplicationStatus => w.put_u8(req_tag::REPLICATION_STATUS),
            Request::Promote => w.put_u8(req_tag::PROMOTE),
            Request::SchedStats => w.put_u8(req_tag::SCHED_STATS),
        }
    }
}

/// Decodes a nested, length-prefixed value at the reader's version.
fn decode_nested<T: WireDecode>(r: &mut Reader<'_>, ctx: &T::Ctx) -> Result<T, DecodeError> {
    let version = r.version();
    tibpre_wire::decode_bare(r.bytes()?, version, ctx)
}

impl WireDecode for Request {
    type Ctx = DecodeCtx;

    fn decode(r: &mut Reader<'_>, ctx: &DecodeCtx) -> Result<Self, DecodeError> {
        let offset = r.offset();
        Ok(match r.u8()? {
            req_tag::PING => Request::Ping,
            req_tag::SHUTDOWN => Request::Shutdown,
            req_tag::PUBLIC_PARAMS => Request::PublicParams,
            req_tag::EXTRACT => Request::Extract {
                identity: read_identity(r)?,
            },
            req_tag::PUT_RECORD => Request::PutRecord {
                patient: read_identity(r)?,
                category: read_category(r)?,
                title: r.string()?,
                ciphertext: Box::new(decode_nested(r, ctx)?),
            },
            req_tag::GET_RECORD => Request::GetRecord {
                id: RecordId(r.u64()?),
            },
            req_tag::DELETE_RECORD => Request::DeleteRecord {
                id: RecordId(r.u64()?),
                requester: read_identity(r)?,
            },
            req_tag::LIST_RECORDS => {
                let patient = read_identity(r)?;
                let flag_offset = r.offset();
                let category = match r.u8()? {
                    0 => None,
                    1 => Some(read_category(r)?),
                    tag => {
                        return Err(DecodeError::invalid_tag(
                            flag_offset,
                            "optional category",
                            tag,
                        ))
                    }
                };
                Request::ListRecords { patient, category }
            }
            req_tag::RECORD_COUNT => Request::RecordCount,
            req_tag::SYNC => Request::Sync,
            req_tag::AUDIT_SNAPSHOT => Request::AuditSnapshot,
            req_tag::LOG_DISCLOSURE => Request::LogDisclosure {
                id: RecordId(r.u64()?),
                requester: read_identity(r)?,
                granted: read_bool(r)?,
            },
            req_tag::LOG_POLICY_CHANGE => Request::LogPolicyChange {
                patient: read_identity(r)?,
                category: read_category(r)?,
                grantee: read_identity(r)?,
                granted: read_bool(r)?,
            },
            req_tag::INSTALL_KEY => Request::InstallKey {
                key: Box::new(decode_nested(r, ctx)?),
            },
            req_tag::REVOKE_KEY => Request::RevokeKey {
                patient: read_identity(r)?,
                category: read_category(r)?,
                grantee: read_identity(r)?,
            },
            req_tag::HAS_GRANT => Request::HasGrant {
                patient: read_identity(r)?,
                category: read_category(r)?,
                grantee: read_identity(r)?,
            },
            req_tag::KEY_COUNT => Request::KeyCount,
            req_tag::DISCLOSE => Request::Disclose {
                patient: read_identity(r)?,
                id: RecordId(r.u64()?),
                requester: read_identity(r)?,
            },
            req_tag::DISCLOSE_CATEGORY => Request::DiscloseCategory {
                patient: read_identity(r)?,
                category: read_category(r)?,
                requester: read_identity(r)?,
            },
            req_tag::SUBSCRIBE_REPLICATION => {
                let count = read_count(r, 8)?;
                let mut applied = Vec::with_capacity(count);
                for _ in 0..count {
                    applied.push(r.u64()?);
                }
                Request::SubscribeReplication { applied }
            }
            req_tag::REPLICATION_STATUS => Request::ReplicationStatus,
            req_tag::PROMOTE => Request::Promote,
            req_tag::SCHED_STATS => Request::SchedStats,
            tag => return Err(DecodeError::invalid_tag(offset, "request", tag)),
        })
    }
}

/// A failure a node reports back to the client, as a value — never by
/// dropping the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// No such record (or a record the requester may not even learn exists).
    NotFound,
    /// The proxy holds no matching re-encryption key.
    AccessDenied {
        /// The category that was requested.
        category: String,
        /// Who requested it.
        requester: String,
    },
    /// A policy invariant was violated (duplicate grant, missing revoke…).
    PolicyConflict(String),
    /// The request was structurally fine but semantically unusable.
    BadRequest(String),
    /// The request is not served by this node's role; carries the role name.
    WrongRole(String),
    /// The node is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// Anything else (storage failures, crypto failures…).
    Internal(String),
}

impl RemoteError {
    /// Maps an application error onto its wire form.
    pub fn from_phr(err: &PhrError) -> Self {
        match err {
            PhrError::RecordNotFound => RemoteError::NotFound,
            PhrError::AccessDenied {
                category,
                requester,
            } => RemoteError::AccessDenied {
                category: category.clone(),
                requester: requester.clone(),
            },
            PhrError::PolicyConflict(msg) => RemoteError::PolicyConflict((*msg).to_string()),
            PhrError::NoProxyForCategory(category) => {
                RemoteError::BadRequest(format!("no proxy for category {category}"))
            }
            other => RemoteError::Internal(other.to_string()),
        }
    }

    /// Maps the wire form back onto an application error — the client half
    /// of [`Self::from_phr`].  Variants `PhrError` cannot carry verbatim
    /// (its `PolicyConflict` holds a `&'static str`) land in
    /// `PhrError::Storage` with the message preserved.
    pub fn into_phr(self) -> PhrError {
        match self {
            RemoteError::NotFound => PhrError::RecordNotFound,
            RemoteError::AccessDenied {
                category,
                requester,
            } => PhrError::AccessDenied {
                category,
                requester,
            },
            other => PhrError::Storage(other.to_string()),
        }
    }
}

impl core::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RemoteError::NotFound => write!(f, "record not found"),
            RemoteError::AccessDenied {
                category,
                requester,
            } => write!(f, "access to {category} denied for {requester}"),
            RemoteError::PolicyConflict(msg) => write!(f, "policy conflict: {msg}"),
            RemoteError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            RemoteError::WrongRole(role) => {
                write!(f, "request not served by a {role} node")
            }
            RemoteError::ShuttingDown => write!(f, "node is shutting down"),
            RemoteError::Internal(msg) => write!(f, "internal node error: {msg}"),
        }
    }
}

mod err_tag {
    pub const NOT_FOUND: u8 = 1;
    pub const ACCESS_DENIED: u8 = 2;
    pub const POLICY_CONFLICT: u8 = 3;
    pub const BAD_REQUEST: u8 = 4;
    pub const WRONG_ROLE: u8 = 5;
    pub const SHUTTING_DOWN: u8 = 6;
    pub const INTERNAL: u8 = 7;
}

impl WireEncode for RemoteError {
    fn encode(&self, w: &mut Writer) {
        match self {
            RemoteError::NotFound => w.put_u8(err_tag::NOT_FOUND),
            RemoteError::AccessDenied {
                category,
                requester,
            } => {
                w.put_u8(err_tag::ACCESS_DENIED);
                w.put_bytes(category.as_bytes());
                w.put_bytes(requester.as_bytes());
            }
            RemoteError::PolicyConflict(msg) => {
                w.put_u8(err_tag::POLICY_CONFLICT);
                w.put_bytes(msg.as_bytes());
            }
            RemoteError::BadRequest(msg) => {
                w.put_u8(err_tag::BAD_REQUEST);
                w.put_bytes(msg.as_bytes());
            }
            RemoteError::WrongRole(role) => {
                w.put_u8(err_tag::WRONG_ROLE);
                w.put_bytes(role.as_bytes());
            }
            RemoteError::ShuttingDown => w.put_u8(err_tag::SHUTTING_DOWN),
            RemoteError::Internal(msg) => {
                w.put_u8(err_tag::INTERNAL);
                w.put_bytes(msg.as_bytes());
            }
        }
    }
}

impl WireDecode for RemoteError {
    type Ctx = ();

    fn decode(r: &mut Reader<'_>, _ctx: &()) -> Result<Self, DecodeError> {
        let offset = r.offset();
        Ok(match r.u8()? {
            err_tag::NOT_FOUND => RemoteError::NotFound,
            err_tag::ACCESS_DENIED => RemoteError::AccessDenied {
                category: r.string()?,
                requester: r.string()?,
            },
            err_tag::POLICY_CONFLICT => RemoteError::PolicyConflict(r.string()?),
            err_tag::BAD_REQUEST => RemoteError::BadRequest(r.string()?),
            err_tag::WRONG_ROLE => RemoteError::WrongRole(r.string()?),
            err_tag::SHUTTING_DOWN => RemoteError::ShuttingDown,
            err_tag::INTERNAL => RemoteError::Internal(r.string()?),
            tag => return Err(DecodeError::invalid_tag(offset, "remote error", tag)),
        })
    }
}

/// Process-global batch-scheduler counters, answered by `SchedStats`.
///
/// The histogram buckets batch sizes as
/// `1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+` (index 0 through 7).  All
/// counters are cumulative since node start; a node running without a
/// scheduler reports zeros.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStatsReport {
    /// Batches executed by the scheduler.
    pub batches: u64,
    /// Requests that went through scheduler batches.
    pub batched_requests: u64,
    /// Requests answered inline, bypassing the scheduler queue.
    pub bypass: u64,
    /// Current submission-queue depth (sampled).
    pub queue_depth: u64,
    /// Highest submission-queue depth observed.
    pub queue_peak: u64,
    /// Batch-size histogram (buckets documented above).
    pub hist: [u64; 8],
}

impl WireEncode for SchedStatsReport {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.batches);
        w.put_u64(self.batched_requests);
        w.put_u64(self.bypass);
        w.put_u64(self.queue_depth);
        w.put_u64(self.queue_peak);
        for bucket in &self.hist {
            w.put_u64(*bucket);
        }
    }
}

impl WireDecode for SchedStatsReport {
    type Ctx = ();

    fn decode(r: &mut Reader<'_>, _ctx: &()) -> Result<Self, DecodeError> {
        let mut report = SchedStatsReport {
            batches: r.u64()?,
            batched_requests: r.u64()?,
            bypass: r.u64()?,
            queue_depth: r.u64()?,
            queue_peak: r.u64()?,
            hist: [0; 8],
        };
        for bucket in &mut report.hist {
            *bucket = r.u64()?;
        }
        Ok(report)
    }
}

/// One response frame, node → client.
#[derive(Debug, Clone)]
pub enum Response {
    /// Health-check answer: the node's role and configured security level.
    Pong {
        /// The node's role.
        role: NodeRole,
        /// The node's security-level name ([`level_name`]).
        level: String,
    },
    /// The request succeeded and carries no payload.
    Ok,
    /// A boolean result (`RevokeKey`, `HasGrant`).
    Bool(bool),
    /// A count (`RecordCount`, `KeyCount`).
    Count(u64),
    /// The id assigned by `PutRecord`.
    RecordId(RecordId),
    /// The ids from `ListRecords`.
    RecordIds(Vec<RecordId>),
    /// The record from `GetRecord`.
    Record(Box<StoredRecord>),
    /// The KGC's public parameters.
    PublicParams(Box<IbePublicParams>),
    /// An extracted private key.
    PrivateKey(Box<IbePrivateKey>),
    /// A single re-encrypted record.
    Bundle(Box<DisclosureBundle>),
    /// A category's worth of re-encrypted records.
    Bundles(Vec<DisclosureBundle>),
    /// The audit trail from `AuditSnapshot`.
    AuditEvents(Vec<AuditEvent>),
    /// Shutdown acknowledged; the node drains and exits.
    ShuttingDown,
    /// The request failed; the error travels as a value.
    Error(RemoteError),
    /// Replication status: per-shard logical WAL positions (committed on a
    /// primary, applied on a replica) and whether the node accepts writes.
    /// The first frame of a replication stream, repeated as a heartbeat.
    ReplicaStatus {
        /// One position per shard; the vector length *is* the shard count.
        positions: Vec<u64>,
        /// Whether this node accepts writes (primary, or promoted replica).
        writable: bool,
    },
    /// A whole snapshot generation file, shipped to bootstrap a replica
    /// shard whose requested offset was garbage-collected.
    SnapshotGeneration {
        /// The shard this snapshot belongs to.
        shard: u64,
        /// The snapshot's generation number.
        gen: u64,
        /// The logical WAL offset the snapshot captured — where chunk
        /// streaming resumes after installation.
        wal_offset: u64,
        /// The raw snapshot file bytes.
        bytes: Vec<u8>,
    },
    /// Raw committed WAL bytes of one shard, starting exactly at `start`.
    /// Not necessarily frame-aligned at either end: receivers buffer and
    /// reassemble frames, exactly as crash recovery scans a segment.
    SegmentChunk {
        /// The shard these bytes belong to.
        shard: u64,
        /// Logical offset of the first byte.
        start: u64,
        /// The raw log bytes (never empty).
        bytes: Vec<u8>,
    },
    /// Batch-scheduler counters, answering `SchedStats`.
    SchedStats(SchedStatsReport),
}

mod resp_tag {
    pub const PONG: u8 = 1;
    pub const OK: u8 = 2;
    pub const BOOL: u8 = 3;
    pub const COUNT: u8 = 4;
    pub const RECORD_ID: u8 = 5;
    pub const RECORD_IDS: u8 = 6;
    pub const RECORD: u8 = 7;
    pub const PUBLIC_PARAMS: u8 = 8;
    pub const PRIVATE_KEY: u8 = 9;
    pub const BUNDLE: u8 = 10;
    pub const BUNDLES: u8 = 11;
    pub const AUDIT_EVENTS: u8 = 12;
    pub const SHUTTING_DOWN: u8 = 13;
    pub const ERROR: u8 = 14;
    pub const REPLICA_STATUS: u8 = 15;
    pub const SNAPSHOT_GENERATION: u8 = 16;
    pub const SEGMENT_CHUNK: u8 = 17;
    pub const SCHED_STATS: u8 = 18;
}

impl WireEncode for Response {
    fn encode(&self, w: &mut Writer) {
        match self {
            Response::Pong { role, level } => {
                w.put_u8(resp_tag::PONG);
                w.put_u8(role.tag());
                w.put_bytes(level.as_bytes());
            }
            Response::Ok => w.put_u8(resp_tag::OK),
            Response::Bool(b) => {
                w.put_u8(resp_tag::BOOL);
                put_bool(w, *b);
            }
            Response::Count(n) => {
                w.put_u8(resp_tag::COUNT);
                w.put_u64(*n);
            }
            Response::RecordId(id) => {
                w.put_u8(resp_tag::RECORD_ID);
                w.put_u64(id.0);
            }
            Response::RecordIds(ids) => {
                w.put_u8(resp_tag::RECORD_IDS);
                w.put_u64(ids.len() as u64);
                for id in ids {
                    w.put_u64(id.0);
                }
            }
            Response::Record(record) => {
                w.put_u8(resp_tag::RECORD);
                w.put_nested(|w| record.encode(w));
            }
            Response::PublicParams(params) => {
                w.put_u8(resp_tag::PUBLIC_PARAMS);
                w.put_nested(|w| params.encode(w));
            }
            Response::PrivateKey(key) => {
                w.put_u8(resp_tag::PRIVATE_KEY);
                w.put_nested(|w| key.encode(w));
            }
            Response::Bundle(bundle) => {
                w.put_u8(resp_tag::BUNDLE);
                w.put_nested(|w| bundle.encode(w));
            }
            Response::Bundles(bundles) => {
                w.put_u8(resp_tag::BUNDLES);
                w.put_u64(bundles.len() as u64);
                for bundle in bundles {
                    w.put_nested(|w| bundle.encode(w));
                }
            }
            Response::AuditEvents(events) => {
                w.put_u8(resp_tag::AUDIT_EVENTS);
                w.put_u64(events.len() as u64);
                for event in events {
                    w.put_nested(|w| event.encode(w));
                }
            }
            Response::ShuttingDown => w.put_u8(resp_tag::SHUTTING_DOWN),
            Response::Error(err) => {
                w.put_u8(resp_tag::ERROR);
                err.encode(w);
            }
            Response::ReplicaStatus {
                positions,
                writable,
            } => {
                w.put_u8(resp_tag::REPLICA_STATUS);
                w.put_u64(positions.len() as u64);
                for position in positions {
                    w.put_u64(*position);
                }
                put_bool(w, *writable);
            }
            Response::SnapshotGeneration {
                shard,
                gen,
                wal_offset,
                bytes,
            } => {
                w.put_u8(resp_tag::SNAPSHOT_GENERATION);
                w.put_u64(*shard);
                w.put_u64(*gen);
                w.put_u64(*wal_offset);
                w.put_bytes(bytes);
            }
            Response::SegmentChunk {
                shard,
                start,
                bytes,
            } => {
                w.put_u8(resp_tag::SEGMENT_CHUNK);
                w.put_u64(*shard);
                w.put_u64(*start);
                w.put_bytes(bytes);
            }
            Response::SchedStats(report) => {
                w.put_u8(resp_tag::SCHED_STATS);
                report.encode(w);
            }
        }
    }
}

/// Reads a `u64` element count, bounding it by the bytes that remain so a
/// hostile count cannot drive a huge pre-allocation.
fn read_count(r: &mut Reader<'_>, min_elem_bytes: usize) -> Result<usize, DecodeError> {
    let offset = r.offset();
    let count = r.u64()?;
    let remaining = r.remaining();
    if count > (remaining / min_elem_bytes.max(1)) as u64 {
        return Err(DecodeError::invalid(offset, "element count exceeds input"));
    }
    Ok(count as usize)
}

impl WireDecode for Response {
    type Ctx = DecodeCtx;

    fn decode(r: &mut Reader<'_>, ctx: &DecodeCtx) -> Result<Self, DecodeError> {
        let offset = r.offset();
        Ok(match r.u8()? {
            resp_tag::PONG => {
                let role_offset = r.offset();
                let role = NodeRole::from_tag(role_offset, r.u8()?)?;
                Response::Pong {
                    role,
                    level: r.string()?,
                }
            }
            resp_tag::OK => Response::Ok,
            resp_tag::BOOL => Response::Bool(read_bool(r)?),
            resp_tag::COUNT => Response::Count(r.u64()?),
            resp_tag::RECORD_ID => Response::RecordId(RecordId(r.u64()?)),
            resp_tag::RECORD_IDS => {
                let count = read_count(r, 8)?;
                let mut ids = Vec::with_capacity(count);
                for _ in 0..count {
                    ids.push(RecordId(r.u64()?));
                }
                Response::RecordIds(ids)
            }
            resp_tag::RECORD => Response::Record(Box::new(decode_nested(r, ctx)?)),
            resp_tag::PUBLIC_PARAMS => Response::PublicParams(Box::new(decode_nested(r, ctx)?)),
            resp_tag::PRIVATE_KEY => Response::PrivateKey(Box::new(decode_nested(r, ctx)?)),
            resp_tag::BUNDLE => Response::Bundle(Box::new(decode_nested(r, ctx)?)),
            resp_tag::BUNDLES => {
                let count = read_count(r, 4)?;
                let mut bundles = Vec::with_capacity(count);
                for _ in 0..count {
                    bundles.push(decode_nested(r, ctx)?);
                }
                Response::Bundles(bundles)
            }
            resp_tag::AUDIT_EVENTS => {
                let count = read_count(r, 4)?;
                let mut events = Vec::with_capacity(count);
                for _ in 0..count {
                    events.push(decode_nested(r, &())?);
                }
                Response::AuditEvents(events)
            }
            resp_tag::SHUTTING_DOWN => Response::ShuttingDown,
            resp_tag::ERROR => Response::Error(RemoteError::decode(r, &())?),
            resp_tag::REPLICA_STATUS => {
                let count = read_count(r, 8)?;
                let mut positions = Vec::with_capacity(count);
                for _ in 0..count {
                    positions.push(r.u64()?);
                }
                Response::ReplicaStatus {
                    positions,
                    writable: read_bool(r)?,
                }
            }
            resp_tag::SNAPSHOT_GENERATION => Response::SnapshotGeneration {
                shard: r.u64()?,
                gen: r.u64()?,
                wal_offset: r.u64()?,
                bytes: r.bytes()?.to_vec(),
            },
            resp_tag::SEGMENT_CHUNK => Response::SegmentChunk {
                shard: r.u64()?,
                start: r.u64()?,
                bytes: r.bytes()?.to_vec(),
            },
            resp_tag::SCHED_STATS => Response::SchedStats(SchedStatsReport::decode(r, &())?),
            tag => return Err(DecodeError::invalid_tag(offset, "response", tag)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tibpre_core::{Delegator, TypeTag};
    use tibpre_ibe::Kgc;
    use tibpre_wire::WireVersion;

    fn round_trip_request(req: &Request, ctx: &DecodeCtx) -> Request {
        let bytes = req.to_wire_bytes();
        for cut in 1..bytes.len() {
            assert!(
                Request::from_wire_bytes(&bytes[..cut], ctx).is_err(),
                "cut {cut}"
            );
        }
        Request::from_wire_bytes(&bytes, ctx).unwrap()
    }

    fn round_trip_response(resp: &Response, ctx: &DecodeCtx) -> Response {
        let bytes = resp.to_wire_bytes();
        for cut in 1..bytes.len() {
            assert!(
                Response::from_wire_bytes(&bytes[..cut], ctx).is_err(),
                "cut {cut}"
            );
        }
        Response::from_wire_bytes(&bytes, ctx).unwrap()
    }

    #[test]
    fn requests_round_trip_under_both_versions() {
        let params = tibpre_pairing::PairingParams::insecure_toy();
        let mut rng = StdRng::seed_from_u64(41);
        let kgc = Kgc::setup(params.clone(), "patients", &mut rng);
        let provider_kgc = Kgc::setup(params.clone(), "providers", &mut rng);
        let alice = Identity::new("alice");
        let doctor = Identity::new("doctor");
        let delegator = Delegator::new(kgc.public_params().clone(), kgc.extract(&alice));
        let ciphertext =
            delegator.encrypt_bytes(b"vitals", b"aad", &Category::Emergency.type_tag(), &mut rng);
        let key = delegator
            .make_reencryption_key(
                &doctor,
                provider_kgc.public_params(),
                &TypeTag::new(Category::Emergency.label()),
                &mut rng,
            )
            .unwrap();
        let ctx = DecodeCtx::from(&params);

        let requests = vec![
            Request::Ping,
            Request::Shutdown,
            Request::PublicParams,
            Request::Extract {
                identity: alice.clone(),
            },
            Request::PutRecord {
                patient: alice.clone(),
                category: Category::Emergency,
                title: "blood type".into(),
                ciphertext: Box::new(ciphertext),
            },
            Request::GetRecord { id: RecordId(7) },
            Request::DeleteRecord {
                id: RecordId(8),
                requester: alice.clone(),
            },
            Request::ListRecords {
                patient: alice.clone(),
                category: None,
            },
            Request::ListRecords {
                patient: alice.clone(),
                category: Some(Category::Custom("genomics".into())),
            },
            Request::RecordCount,
            Request::Sync,
            Request::AuditSnapshot,
            Request::LogDisclosure {
                id: RecordId(9),
                requester: doctor.clone(),
                granted: true,
            },
            Request::LogPolicyChange {
                patient: alice.clone(),
                category: Category::Medication,
                grantee: doctor.clone(),
                granted: false,
            },
            Request::InstallKey { key: Box::new(key) },
            Request::RevokeKey {
                patient: alice.clone(),
                category: Category::Emergency,
                grantee: doctor.clone(),
            },
            Request::HasGrant {
                patient: alice.clone(),
                category: Category::Emergency,
                grantee: doctor.clone(),
            },
            Request::KeyCount,
            Request::Disclose {
                patient: alice.clone(),
                id: RecordId(7),
                requester: doctor.clone(),
            },
            Request::DiscloseCategory {
                patient: alice,
                category: Category::Emergency,
                requester: doctor,
            },
            Request::SubscribeReplication {
                applied: Vec::new(),
            },
            Request::SubscribeReplication {
                applied: vec![0, 4096, u64::MAX],
            },
            Request::ReplicationStatus,
            Request::Promote,
            Request::SchedStats,
        ];
        for req in &requests {
            let back = round_trip_request(req, &ctx);
            // Spot-check the discriminant survives; payload equality is
            // covered by each type's own wire tests.
            assert_eq!(
                std::mem::discriminant(&back),
                std::mem::discriminant(req),
                "{req:?}"
            );
            // The v0 envelope parses too.
            let v0 = req.to_wire_bytes_versioned(WireVersion::V0);
            Request::from_wire_bytes(&v0, &ctx).unwrap();
        }
    }

    #[test]
    fn responses_round_trip_and_preserve_payloads() {
        let params = tibpre_pairing::PairingParams::insecure_toy();
        let ctx = DecodeCtx::from(&params);
        let responses = vec![
            Response::Pong {
                role: NodeRole::Store,
                level: "toy".into(),
            },
            Response::Ok,
            Response::Bool(true),
            Response::Count(42),
            Response::RecordId(RecordId(3)),
            Response::RecordIds(vec![RecordId(1), RecordId(2), RecordId(9)]),
            Response::ShuttingDown,
            Response::Error(RemoteError::NotFound),
            Response::Error(RemoteError::AccessDenied {
                category: "emergency".into(),
                requester: "mallory".into(),
            }),
            Response::Error(RemoteError::WrongRole("kgc".into())),
            Response::AuditEvents(Vec::new()),
            Response::Bundles(Vec::new()),
            Response::ReplicaStatus {
                positions: vec![10, 0, 7],
                writable: false,
            },
            Response::SnapshotGeneration {
                shard: 3,
                gen: 9,
                wal_offset: 4096,
                bytes: vec![0xAB; 32],
            },
            Response::SegmentChunk {
                shard: 1,
                start: 128,
                bytes: vec![0xCD; 16],
            },
            Response::SchedStats(SchedStatsReport::default()),
        ];
        for resp in &responses {
            let back = round_trip_response(resp, &ctx);
            assert_eq!(
                std::mem::discriminant(&back),
                std::mem::discriminant(resp),
                "{resp:?}"
            );
        }
        match round_trip_response(&Response::RecordIds(vec![RecordId(5), RecordId(6)]), &ctx) {
            Response::RecordIds(ids) => assert_eq!(ids, vec![RecordId(5), RecordId(6)]),
            other => panic!("wrong variant: {other:?}"),
        }
        match round_trip_response(
            &Response::Error(RemoteError::AccessDenied {
                category: "emergency".into(),
                requester: "mallory".into(),
            }),
            &ctx,
        ) {
            Response::Error(err) => assert_eq!(
                err,
                RemoteError::AccessDenied {
                    category: "emergency".into(),
                    requester: "mallory".into(),
                }
            ),
            other => panic!("wrong variant: {other:?}"),
        }
        // Replication frames carry raw log bytes — those must survive
        // verbatim, not just by discriminant.
        match round_trip_response(
            &Response::SegmentChunk {
                shard: 2,
                start: 777,
                bytes: vec![1, 2, 3, 4, 5],
            },
            &ctx,
        ) {
            Response::SegmentChunk {
                shard,
                start,
                bytes,
            } => {
                assert_eq!((shard, start), (2, 777));
                assert_eq!(bytes, vec![1, 2, 3, 4, 5]);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match round_trip_response(
            &Response::ReplicaStatus {
                positions: vec![64, 0, u64::MAX],
                writable: true,
            },
            &ctx,
        ) {
            Response::ReplicaStatus {
                positions,
                writable,
            } => {
                assert_eq!(positions, vec![64, 0, u64::MAX]);
                assert!(writable);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let report = SchedStatsReport {
            batches: 5,
            batched_requests: 40,
            bypass: 12,
            queue_depth: 3,
            queue_peak: 17,
            hist: [1, 2, 3, 4, 5, 6, 7, 8],
        };
        match round_trip_response(&Response::SchedStats(report.clone()), &ctx) {
            Response::SchedStats(back) => assert_eq!(back, report),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn hostile_counts_fail_before_allocating() {
        let params = tibpre_pairing::PairingParams::insecure_toy();
        let ctx = DecodeCtx::from(&params);
        // A RecordIds frame claiming u64::MAX elements with no bytes behind
        // the claim must fail on the count, not attempt the allocation.
        let mut w = Writer::with_version(WireVersion::V1);
        w.put_u8(WireVersion::V1.tag());
        w.put_u8(6); // resp_tag::RECORD_IDS
        w.put_u64(u64::MAX);
        assert!(Response::from_wire_bytes(&w.into_bytes(), &ctx).is_err());
    }

    #[test]
    fn error_mapping_round_trips_through_phr() {
        let not_found = RemoteError::from_phr(&PhrError::RecordNotFound);
        assert_eq!(not_found, RemoteError::NotFound);
        assert!(matches!(not_found.into_phr(), PhrError::RecordNotFound));
        let denied = RemoteError::from_phr(&PhrError::AccessDenied {
            category: "emergency".into(),
            requester: "mallory".into(),
        });
        assert!(matches!(
            denied.into_phr(),
            PhrError::AccessDenied { category, requester }
                if category == "emergency" && requester == "mallory"
        ));
        assert!(matches!(
            RemoteError::from_phr(&PhrError::PolicyConflict("dup")).into_phr(),
            PhrError::Storage(_)
        ));
    }

    #[test]
    fn role_and_level_names_round_trip() {
        for role in [NodeRole::Kgc, NodeRole::Proxy, NodeRole::Store] {
            assert_eq!(NodeRole::from_name(role.name()), Some(role));
        }
        assert_eq!(NodeRole::from_name("coordinator"), None);
        for level in [
            SecurityLevel::Toy,
            SecurityLevel::Low80,
            SecurityLevel::Medium112,
            SecurityLevel::High128,
        ] {
            assert_eq!(level_from_name(level_name(level)), Some(level));
        }
        assert_eq!(level_from_name("256bit"), None);
    }
}
