//! # tibpre-client — the node protocol and its TCP clients
//!
//! The deployment story of Ibraimi et al. is a *service*: patients,
//! providers, and the semi-trusted proxy are network principals.  This crate
//! defines the protocol those principals speak — typed [`Request`] /
//! [`Response`] enums carried as length-prefixed
//! ([`tibpre_wire::framing`]) versioned-envelope frames — and the blocking
//! TCP clients for each node role:
//!
//! * [`KgcClient`] — `PublicParams` / `Extract` against a KGC node,
//! * [`StoreClient`] — record CRUD, listing, audit, and sync against a
//!   store node,
//! * [`ProxyClient`] — grant/revoke and disclosure against a proxy node,
//! * [`RemoteStore`] — a store node seen through
//!   [`tibpre_phr::RecordSource`], which is how a *proxy node* reads the
//!   records it re-encrypts without holding them.
//!
//! The protocol types live here (not in `tibpre-wire`) because they carry
//! scheme-level payloads — ciphertexts, re-encryption keys, disclosure
//! bundles — and the wire crate sits *below* those layers.  The server crate
//! depends on this one for the shared protocol.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod conn;
pub mod protocol;
pub mod remote;

pub use conn::{ClientConfig, ClientError, Connection};
pub use protocol::{
    level_from_name, level_name, params_for_level, NodeRole, RemoteError, Request, Response,
    SchedStatsReport,
};
pub use remote::{KgcClient, ProxyClient, RemoteStore, StoreClient};
