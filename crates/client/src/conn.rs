//! One framed TCP connection to a node, and the client-side errors.

use crate::protocol::{NodeRole, RemoteError, Request, Response};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;
use tibpre_pairing::{DecodeCtx, PairingParams};
use tibpre_wire::{
    read_frame, write_frame, DecodeError, FrameError, WireDecode, WireEncode, DEFAULT_MAX_FRAME,
};

/// Anything that can go wrong between building a request and holding its
/// decoded response.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, read, or write).
    Io(io::Error),
    /// A frame was torn or oversized.
    Frame(FrameError),
    /// A frame arrived but its payload did not decode.
    Decode(DecodeError),
    /// The node reported a failure.
    Remote(RemoteError),
    /// The node answered with a response variant the request cannot produce.
    UnexpectedResponse(&'static str),
    /// The node closed the connection between frames.
    Disconnected,
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Decode(e) => write!(f, "undecodable response: {e}"),
            ClientError::Remote(e) => write!(f, "node error: {e}"),
            ClientError::UnexpectedResponse(what) => {
                write!(f, "unexpected response variant: {what}")
            }
            ClientError::Disconnected => write!(f, "node closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// Client-side result alias.
pub type Result<T> = core::result::Result<T, ClientError>;

/// Connection knobs shared by every client in this crate.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Read timeout per response (None blocks forever).
    pub read_timeout: Option<Duration>,
    /// Write timeout per request (None blocks forever).
    pub write_timeout: Option<Duration>,
    /// Maximum accepted frame size, both directions.
    pub max_frame: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// One framed request/response connection to a node.
///
/// The protocol answers every request with exactly one response frame, in
/// request order, so a connection supports two usage modes:
///
/// * **lockstep** — [`Self::call`]: one request, block for its response;
/// * **pipelined** — [`Self::send`] several requests (the writer buffers
///   them; [`Self::flush`] pushes the whole run in one segment), then
///   [`Self::receive`] each response in order.  [`Self::call_pipelined`]
///   packages the common burst shape.
///
/// Responses are matched to requests purely by order — the invariant the
/// server's scheduler preserves per connection.  Additional concurrency
/// comes from opening more connections (see [`crate::RemoteStore`]'s pool).
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    ctx: DecodeCtx,
    max_frame: usize,
    in_flight: usize,
}

impl Connection {
    /// Connects and applies the configured timeouts.
    pub fn connect(
        addr: impl ToSocketAddrs,
        params: &Arc<PairingParams>,
        config: &ClientConfig,
    ) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Connection {
            reader,
            writer,
            ctx: DecodeCtx::from(params),
            max_frame: config.max_frame,
            in_flight: 0,
        })
    }

    /// Sends one request and blocks for its response.  A
    /// [`Response::Error`] comes back as [`ClientError::Remote`], so the
    /// `Ok` arm always holds a success variant.
    pub fn call(&mut self, request: &Request) -> Result<Response> {
        self.send(request)?;
        self.flush()?;
        match self.receive()? {
            Response::Error(err) => Err(ClientError::Remote(err)),
            response => Ok(response),
        }
    }

    /// Queues one request frame into the writer without flushing.  The
    /// response is owed: balance every `send` with a [`Self::receive`].
    pub fn send(&mut self, request: &Request) -> Result<()> {
        write_frame(&mut self.writer, &request.to_wire_bytes(), self.max_frame)?;
        self.in_flight += 1;
        Ok(())
    }

    /// Flushes all queued request frames to the socket in one push.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Blocks for the next response frame, in request order.  Unlike
    /// [`Self::call`], a [`Response::Error`] is returned as a *value* — a
    /// pipelined caller must keep consuming the remaining in-flight
    /// responses even when one of them is a denial.
    pub fn receive(&mut self) -> Result<Response> {
        let payload =
            read_frame(&mut self.reader, self.max_frame)?.ok_or(ClientError::Disconnected)?;
        self.in_flight = self.in_flight.saturating_sub(1);
        Ok(Response::from_wire_bytes(&payload, &self.ctx)?)
    }

    /// Responses sent (or queued) but not yet received.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Sends a whole burst pipelined — all requests in one flush, then all
    /// responses read back in order.  Errors travel as
    /// [`Response::Error`] values in the result vector, which always has
    /// exactly `requests.len()` entries on success.
    pub fn call_pipelined(&mut self, requests: &[Request]) -> Result<Vec<Response>> {
        for request in requests {
            self.send(request)?;
        }
        self.flush()?;
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            responses.push(self.receive()?);
        }
        Ok(responses)
    }

    /// [`Self::call`] expecting a bare [`Response::Ok`].
    pub fn call_ok(&mut self, request: &Request) -> Result<()> {
        match self.call(request)? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("expected Ok")),
        }
    }

    /// Health-checks the node and returns `(role, level_name)`.
    pub fn ping(&mut self) -> Result<(NodeRole, String)> {
        match self.call(&Request::Ping)? {
            Response::Pong { role, level } => Ok((role, level)),
            _ => Err(ClientError::UnexpectedResponse("expected Pong")),
        }
    }

    /// Asks the node to drain and exit.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("expected ShuttingDown")),
        }
    }

    /// The decode context this connection validates responses under.
    pub fn ctx(&self) -> &DecodeCtx {
        &self.ctx
    }
}

impl core::fmt::Debug for Connection {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Connection(max_frame={})", self.max_frame)
    }
}
