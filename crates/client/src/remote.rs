//! Typed clients for the three node roles, and the [`RemoteStore`] that
//! plugs a store node into [`tibpre_phr::RecordSource`] so a proxy node can
//! serve disclosures from records it does not hold.

use crate::conn::{ClientConfig, ClientError, Connection, Result};
use crate::protocol::{RemoteError, Request, Response, SchedStatsReport};
use parking_lot::Mutex;
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tibpre_core::{HybridCiphertext, ReEncryptionKey};
use tibpre_ibe::{IbePrivateKey, IbePublicParams, Identity};
use tibpre_pairing::PairingParams;
use tibpre_phr::proxy_service::DisclosureBundle;
use tibpre_phr::store::StoredRecord;
use tibpre_phr::{AuditEvent, Category, RecordId, RecordSource};

/// Client for a KGC node.
#[derive(Debug)]
pub struct KgcClient {
    conn: Connection,
}

impl KgcClient {
    /// Connects to a KGC node.
    pub fn connect(
        addr: impl ToSocketAddrs,
        params: &Arc<PairingParams>,
        config: &ClientConfig,
    ) -> Result<Self> {
        Ok(KgcClient {
            conn: Connection::connect(addr, params, config)?,
        })
    }

    /// The domain's public parameters.
    pub fn public_params(&mut self) -> Result<IbePublicParams> {
        match self.conn.call(&Request::PublicParams)? {
            Response::PublicParams(params) => Ok(*params),
            _ => Err(ClientError::UnexpectedResponse("expected PublicParams")),
        }
    }

    /// `Extract`: the private key for an identity.
    pub fn extract(&mut self, identity: &Identity) -> Result<IbePrivateKey> {
        let request = Request::Extract {
            identity: identity.clone(),
        };
        match self.conn.call(&request)? {
            Response::PrivateKey(key) => Ok(*key),
            _ => Err(ClientError::UnexpectedResponse("expected PrivateKey")),
        }
    }

    /// The underlying connection (for ping/shutdown).
    pub fn connection(&mut self) -> &mut Connection {
        &mut self.conn
    }
}

/// Client for a store node.
#[derive(Debug)]
pub struct StoreClient {
    conn: Connection,
}

impl StoreClient {
    /// Connects to a store node.
    pub fn connect(
        addr: impl ToSocketAddrs,
        params: &Arc<PairingParams>,
        config: &ClientConfig,
    ) -> Result<Self> {
        Ok(StoreClient {
            conn: Connection::connect(addr, params, config)?,
        })
    }

    /// Stores an encrypted record; the node assigns and returns the id.
    pub fn put(
        &mut self,
        patient: &Identity,
        category: &Category,
        title: &str,
        ciphertext: HybridCiphertext,
    ) -> Result<RecordId> {
        let request = Request::PutRecord {
            patient: patient.clone(),
            category: category.clone(),
            title: title.to_string(),
            ciphertext: Box::new(ciphertext),
        };
        match self.conn.call(&request)? {
            Response::RecordId(id) => Ok(id),
            _ => Err(ClientError::UnexpectedResponse("expected RecordId")),
        }
    }

    /// Fetches one record.
    pub fn get(&mut self, id: RecordId) -> Result<StoredRecord> {
        match self.conn.call(&Request::GetRecord { id })? {
            Response::Record(record) => Ok(*record),
            _ => Err(ClientError::UnexpectedResponse("expected Record")),
        }
    }

    /// Deletes one record.
    pub fn delete(&mut self, id: RecordId, requester: &Identity) -> Result<()> {
        self.conn.call_ok(&Request::DeleteRecord {
            id,
            requester: requester.clone(),
        })
    }

    /// Lists a patient's record ids, optionally within one category.
    pub fn list(
        &mut self,
        patient: &Identity,
        category: Option<&Category>,
    ) -> Result<Vec<RecordId>> {
        let request = Request::ListRecords {
            patient: patient.clone(),
            category: category.cloned(),
        };
        match self.conn.call(&request)? {
            Response::RecordIds(ids) => Ok(ids),
            _ => Err(ClientError::UnexpectedResponse("expected RecordIds")),
        }
    }

    /// Total number of records on the node.
    pub fn record_count(&mut self) -> Result<u64> {
        match self.conn.call(&Request::RecordCount)? {
            Response::Count(n) => Ok(n),
            _ => Err(ClientError::UnexpectedResponse("expected Count")),
        }
    }

    /// Forces WAL durability for everything accepted so far.
    pub fn sync(&mut self) -> Result<()> {
        self.conn.call_ok(&Request::Sync)
    }

    /// The store's audit trail.
    pub fn audit_snapshot(&mut self) -> Result<Vec<AuditEvent>> {
        match self.conn.call(&Request::AuditSnapshot)? {
            Response::AuditEvents(events) => Ok(events),
            _ => Err(ClientError::UnexpectedResponse("expected AuditEvents")),
        }
    }

    /// The underlying connection (for ping/shutdown).
    pub fn connection(&mut self) -> &mut Connection {
        &mut self.conn
    }
}

/// Client for a proxy node.
#[derive(Debug)]
pub struct ProxyClient {
    conn: Connection,
}

impl ProxyClient {
    /// Connects to a proxy node.
    pub fn connect(
        addr: impl ToSocketAddrs,
        params: &Arc<PairingParams>,
        config: &ClientConfig,
    ) -> Result<Self> {
        Ok(ProxyClient {
            conn: Connection::connect(addr, params, config)?,
        })
    }

    /// Installs a re-encryption key (granting access).
    pub fn install_key(&mut self, key: ReEncryptionKey) -> Result<()> {
        self.conn
            .call_ok(&Request::InstallKey { key: Box::new(key) })
    }

    /// Removes a re-encryption key; `true` if a key was actually removed.
    pub fn revoke_key(
        &mut self,
        patient: &Identity,
        category: &Category,
        grantee: &Identity,
    ) -> Result<bool> {
        let request = Request::RevokeKey {
            patient: patient.clone(),
            category: category.clone(),
            grantee: grantee.clone(),
        };
        match self.conn.call(&request)? {
            Response::Bool(removed) => Ok(removed),
            _ => Err(ClientError::UnexpectedResponse("expected Bool")),
        }
    }

    /// Whether a grant is active.
    pub fn has_grant(
        &mut self,
        patient: &Identity,
        category: &Category,
        grantee: &Identity,
    ) -> Result<bool> {
        let request = Request::HasGrant {
            patient: patient.clone(),
            category: category.clone(),
            grantee: grantee.clone(),
        };
        match self.conn.call(&request)? {
            Response::Bool(has) => Ok(has),
            _ => Err(ClientError::UnexpectedResponse("expected Bool")),
        }
    }

    /// Number of installed re-encryption keys.
    pub fn key_count(&mut self) -> Result<u64> {
        match self.conn.call(&Request::KeyCount)? {
            Response::Count(n) => Ok(n),
            _ => Err(ClientError::UnexpectedResponse("expected Count")),
        }
    }

    /// Re-encrypts one record for a requester.
    pub fn disclose(
        &mut self,
        patient: &Identity,
        id: RecordId,
        requester: &Identity,
    ) -> Result<DisclosureBundle> {
        let request = Request::Disclose {
            patient: patient.clone(),
            id,
            requester: requester.clone(),
        };
        match self.conn.call(&request)? {
            Response::Bundle(bundle) => Ok(*bundle),
            _ => Err(ClientError::UnexpectedResponse("expected Bundle")),
        }
    }

    /// Issues one disclosure per `(patient, id, requester)` triple as a
    /// single pipelined run: every request is written before the first
    /// response is read, so the node's batch scheduler can coalesce them.
    /// Responses come back in request order; per-item policy denials are
    /// values in the returned vector, while a transport failure aborts the
    /// whole run (the connection is no longer usable mid-pipeline).
    pub fn disclose_pipelined(
        &mut self,
        items: &[(Identity, RecordId, Identity)],
    ) -> Result<Vec<core::result::Result<DisclosureBundle, RemoteError>>> {
        let requests: Vec<Request> = items
            .iter()
            .map(|(patient, id, requester)| Request::Disclose {
                patient: patient.clone(),
                id: *id,
                requester: requester.clone(),
            })
            .collect();
        self.conn
            .call_pipelined(&requests)?
            .into_iter()
            .map(|response| match response {
                Response::Bundle(bundle) => Ok(Ok(*bundle)),
                Response::Error(e) => Ok(Err(e)),
                _ => Err(ClientError::UnexpectedResponse("expected Bundle")),
            })
            .collect()
    }

    /// The node's batch-scheduler counters (process-global; zeros on a node
    /// that never ran a scheduler).
    pub fn sched_stats(&mut self) -> Result<SchedStatsReport> {
        match self.conn.call(&Request::SchedStats)? {
            Response::SchedStats(report) => Ok(report),
            _ => Err(ClientError::UnexpectedResponse("expected SchedStats")),
        }
    }

    /// The proxy's audit trail.
    pub fn audit_snapshot(&mut self) -> Result<Vec<AuditEvent>> {
        match self.conn.call(&Request::AuditSnapshot)? {
            Response::AuditEvents(events) => Ok(events),
            _ => Err(ClientError::UnexpectedResponse("expected AuditEvents")),
        }
    }

    /// Re-encrypts every record of one category for a requester.
    pub fn disclose_category(
        &mut self,
        patient: &Identity,
        category: &Category,
        requester: &Identity,
    ) -> Result<Vec<DisclosureBundle>> {
        let request = Request::DiscloseCategory {
            patient: patient.clone(),
            category: category.clone(),
            requester: requester.clone(),
        };
        match self.conn.call(&request)? {
            Response::Bundles(bundles) => Ok(bundles),
            _ => Err(ClientError::UnexpectedResponse("expected Bundles")),
        }
    }

    /// The underlying connection (for ping/shutdown).
    pub fn connection(&mut self) -> &mut Connection {
        &mut self.conn
    }
}

/// A store node viewed through [`RecordSource`]: the piece that lets a
/// *proxy node* serve disclosures for records held on a *store node*.
///
/// Holds a small connection pool (requests are strictly serial per
/// connection) handed out round-robin, so concurrent disclosure handlers on
/// the proxy don't serialize on one socket.
pub struct RemoteStore {
    pool: Vec<Mutex<Connection>>,
    next: AtomicUsize,
}

impl RemoteStore {
    /// Connects `connections` sockets to the store node.
    pub fn connect(
        addr: impl ToSocketAddrs + Copy,
        params: &Arc<PairingParams>,
        config: &ClientConfig,
        connections: usize,
    ) -> Result<Self> {
        let pool = (0..connections.max(1))
            .map(|_| Ok(Mutex::new(Connection::connect(addr, params, config)?)))
            .collect::<Result<Vec<_>>>()?;
        Ok(RemoteStore {
            pool,
            next: AtomicUsize::new(0),
        })
    }

    fn call(&self, request: &Request) -> Result<Response> {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.pool.len();
        self.pool[i].lock().call(request)
    }

    /// Sends a run of requests down ONE pooled connection pipelined: all
    /// frames in one flush, all responses read back in order.
    fn call_pipelined(&self, requests: &[Request]) -> Result<Vec<Response>> {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.pool.len();
        self.pool[i].lock().call_pipelined(requests)
    }

    fn phr_call(&self, request: &Request) -> tibpre_phr::Result<Response> {
        self.call(request).map_err(|e| match e {
            ClientError::Remote(remote) => remote.into_phr(),
            other => tibpre_phr::PhrError::Storage(other.to_string()),
        })
    }
}

fn transport_err(e: ClientError) -> tibpre_phr::PhrError {
    match e {
        ClientError::Remote(remote) => remote.into_phr(),
        other => tibpre_phr::PhrError::Storage(other.to_string()),
    }
}

impl RecordSource for RemoteStore {
    fn get(&self, id: RecordId) -> tibpre_phr::Result<Arc<StoredRecord>> {
        match self.phr_call(&Request::GetRecord { id })? {
            Response::Record(record) => Ok(Arc::new(*record)),
            _ => Err(tibpre_phr::PhrError::Storage(
                "store node answered GetRecord with the wrong variant".into(),
            )),
        }
    }

    fn list_for_patient(&self, patient: &Identity) -> tibpre_phr::Result<Vec<RecordId>> {
        let request = Request::ListRecords {
            patient: patient.clone(),
            category: None,
        };
        match self.phr_call(&request)? {
            Response::RecordIds(ids) => Ok(ids),
            _ => Err(tibpre_phr::PhrError::Storage(
                "store node answered ListRecords with the wrong variant".into(),
            )),
        }
    }

    fn list_for_patient_category(
        &self,
        patient: &Identity,
        category: &Category,
    ) -> tibpre_phr::Result<Vec<RecordId>> {
        let request = Request::ListRecords {
            patient: patient.clone(),
            category: Some(category.clone()),
        };
        match self.phr_call(&request)? {
            Response::RecordIds(ids) => Ok(ids),
            _ => Err(tibpre_phr::PhrError::Storage(
                "store node answered ListRecords with the wrong variant".into(),
            )),
        }
    }

    fn get_many(&self, ids: &[RecordId]) -> Vec<tibpre_phr::Result<Arc<StoredRecord>>> {
        if ids.len() <= 1 {
            return ids.iter().map(|id| self.get(*id)).collect();
        }
        let requests: Vec<Request> = ids
            .iter()
            .map(|id| Request::GetRecord { id: *id })
            .collect();
        match self.call_pipelined(&requests) {
            Ok(responses) => responses
                .into_iter()
                .map(|response| match response {
                    Response::Record(record) => Ok(Arc::new(*record)),
                    Response::Error(err) => Err(err.into_phr()),
                    _ => Err(tibpre_phr::PhrError::Storage(
                        "store node answered GetRecord with the wrong variant".into(),
                    )),
                })
                .collect(),
            // A transport failure tears the whole pipelined run: every id
            // in the batch gets the same error.
            Err(e) => {
                let err = transport_err(e);
                ids.iter().map(|_| Err(err.clone())).collect()
            }
        }
    }

    fn log_disclosure(&self, id: RecordId, requester: &Identity, granted: bool) {
        // Best-effort: the proxy keeps its own durable audit trail, and a
        // disclosure must not fail because the store's trail was
        // unreachable.
        let _ = self.call(&Request::LogDisclosure {
            id,
            requester: requester.clone(),
            granted,
        });
    }

    fn log_disclosures(&self, entries: &[(RecordId, Identity, bool)]) {
        // Best-effort like the single form, but one pipelined run instead
        // of a round trip per entry.
        let requests: Vec<Request> = entries
            .iter()
            .map(|(id, requester, granted)| Request::LogDisclosure {
                id: *id,
                requester: requester.clone(),
                granted: *granted,
            })
            .collect();
        let _ = self.call_pipelined(&requests);
    }

    fn log_policy_change(
        &self,
        patient: &Identity,
        category: &Category,
        grantee: &Identity,
        granted: bool,
    ) {
        let _ = self.call(&Request::LogPolicyChange {
            patient: patient.clone(),
            category: category.clone(),
            grantee: grantee.clone(),
            granted,
        });
    }
}

impl core::fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "RemoteStore(pool={})", self.pool.len())
    }
}
