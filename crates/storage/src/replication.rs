//! The replication view over a segmented WAL: committed-byte chunk reads
//! from a logical offset, plus the subscription point a shipping loop
//! blocks on while a primary is idle.
//!
//! A [`crate::SegmentedWal`] is already a replication log — a monotonic
//! byte stream addressed by logical offset, cut into files at snapshot
//! boundaries.  This module adds the two pieces a primary needs to *ship*
//! it:
//!
//! * [`ReplicationLog`] — reads raw committed bytes from a `(dir, base)`
//!   series starting at a logical offset, bounded by a caller-supplied
//!   committed end (the store reports it under its shard lock, so a torn
//!   concurrent read of an in-flight group commit is impossible) and cut
//!   at segment ends.  Chunks carry **no frame alignment guarantee**: the
//!   receiver buffers bytes and runs [`crate::frame::scan`] to extract
//!   complete frames, which is exactly what crash recovery already does.
//! * [`CommitNotifier`] — a monotonic epoch behind a condvar.  The store
//!   bumps it after every commit; a shipping loop that has caught up to
//!   the committed end waits on it instead of spinning.
//!
//! When a replica asks for an offset **below the first surviving
//! segment**, the prefix it wants has been garbage-collected behind a
//! snapshot; [`ChunkOutcome::Gone`] tells the caller to fall back to
//! snapshot bootstrap.  An offset *beyond* the committed end is the
//! replica's corruption (or a stale primary) and comes back as
//! [`ChunkOutcome::Ahead`] — the shipping loop surfaces it as a protocol
//! error instead of inventing bytes.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::segment::{self, SegmentInfo};

/// One chunk read from the replication log.
#[derive(Debug, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// Raw committed log bytes starting exactly at the requested offset.
    /// Not necessarily frame-aligned at either end; never empty.
    Bytes(Vec<u8>),
    /// The requested offset equals the committed end: nothing new yet.
    CaughtUp,
    /// The requested offset lies behind the first surviving segment — the
    /// prefix was garbage-collected; bootstrap from a snapshot instead.
    Gone,
    /// The requested offset lies beyond the committed end or outside the
    /// surviving chain: the requester knows bytes this log never wrote.
    Ahead,
}

/// A read-only replication view over one segmented WAL series.
///
/// Holds no file handles between reads and never writes; the owning
/// [`crate::SegmentedWal`] keeps appending concurrently.  Callers pass the
/// committed logical end they observed under the writer's lock, so reads
/// stop short of any in-flight group commit.
#[derive(Debug, Clone)]
pub struct ReplicationLog {
    dir: PathBuf,
    base: String,
}

impl ReplicationLog {
    /// A replication view over the series `base` in `dir`.
    pub fn new(dir: &Path, base: &str) -> Self {
        ReplicationLog {
            dir: dir.to_path_buf(),
            base: base.to_string(),
        }
    }

    /// The series' base name.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The on-disk segments of the series, sorted by start offset.
    pub fn segments(&self) -> io::Result<Vec<SegmentInfo>> {
        segment::list_segments(&self.dir, &self.base)
    }

    /// Reads up to `max` committed bytes starting at logical offset
    /// `from`, never crossing `committed` (the writer-reported end) and
    /// never crossing a segment boundary — one chunk maps to one
    /// contiguous file read.
    pub fn read_chunk(&self, from: u64, committed: u64, max: usize) -> io::Result<ChunkOutcome> {
        if from > committed {
            return Ok(ChunkOutcome::Ahead);
        }
        if from == committed || max == 0 {
            return Ok(ChunkOutcome::CaughtUp);
        }
        let segments = match segment::list_segments(&self.dir, &self.base) {
            Ok(segments) => segments,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let Some(first) = segments.first() else {
            // Bytes are committed (committed > from ≥ 0) but no file holds
            // them: the series was GC'd or never existed here.
            return Ok(ChunkOutcome::Gone);
        };
        if from < first.start {
            return Ok(ChunkOutcome::Gone);
        }
        for segment in &segments {
            if from >= segment.end() {
                continue;
            }
            if from < segment.start {
                // A chain gap between the requested offset and this
                // segment: the offset names reclaimed (or lost) bytes.
                return Ok(ChunkOutcome::Gone);
            }
            let skip = from - segment.start;
            // Stop at the segment end, the committed end, and the chunk
            // cap, whichever is nearest.
            let end = segment.end().min(committed);
            let want = ((end - from) as usize).min(max);
            if want == 0 {
                return Ok(ChunkOutcome::CaughtUp);
            }
            let mut file = File::open(&segment.path)?;
            if skip > 0 {
                file.seek(SeekFrom::Start(skip))?;
            }
            let mut bytes = vec![0u8; want];
            file.read_exact(&mut bytes)?;
            return Ok(ChunkOutcome::Bytes(bytes));
        }
        // `from` is at or beyond the end of every surviving segment yet
        // below `committed`: the writer claims bytes no file holds.
        Ok(ChunkOutcome::Ahead)
    }
}

/// A monotonic commit epoch behind a condvar — the subscription point for
/// log shipping.
///
/// The writer calls [`CommitNotifier::notify`] after every commit (and
/// after every rotation, since a rotation seals a segment).  A shipping
/// loop remembers the epoch it last observed and calls
/// [`CommitNotifier::wait_beyond`]; the epoch carries no offset — it only
/// answers "did anything happen since I looked?", and the loop re-reads
/// the store's committed positions itself.
#[derive(Debug, Default)]
pub struct CommitNotifier {
    epoch: Mutex<u64>,
    condvar: Condvar,
}

impl CommitNotifier {
    /// A notifier at epoch 0.
    pub fn new() -> Self {
        CommitNotifier::default()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        *self.epoch.lock().expect("commit notifier poisoned")
    }

    /// Bumps the epoch and wakes every waiter.
    pub fn notify(&self) {
        let mut epoch = self.epoch.lock().expect("commit notifier poisoned");
        *epoch += 1;
        drop(epoch);
        self.condvar.notify_all();
    }

    /// Blocks until the epoch moves past `seen` or `timeout` elapses;
    /// returns the epoch observed on wake.  A `seen` already behind the
    /// current epoch returns immediately — a commit between the caller's
    /// read and its wait is never missed.
    pub fn wait_beyond(&self, seen: u64, timeout: Duration) -> u64 {
        let mut epoch = self.epoch.lock().expect("commit notifier poisoned");
        let deadline = std::time::Instant::now() + timeout;
        while *epoch <= seen {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _timed_out) = self
                .condvar
                .wait_timeout(epoch, deadline - now)
                .expect("commit notifier poisoned");
            epoch = guard;
        }
        *epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use crate::{frame, FsyncPolicy, SegmentedWal};
    use std::sync::Arc;

    fn seed_wal(dir: &Path) -> (SegmentedWal, u64) {
        let mut wal = SegmentedWal::open(dir, "r", 0, FsyncPolicy::Never).unwrap();
        wal.append(b"one");
        wal.append(b"two");
        let committed = wal.commit().unwrap();
        (wal, committed)
    }

    #[test]
    fn chunks_cover_the_committed_bytes_exactly() {
        let dir = test_dir("repl-basic");
        let (_wal, committed) = seed_wal(dir.path());
        let log = ReplicationLog::new(dir.path(), "r");

        // One big read returns everything; frame::scan sees both frames.
        let ChunkOutcome::Bytes(bytes) = log.read_chunk(0, committed, 1 << 20).unwrap() else {
            panic!("expected bytes");
        };
        assert_eq!(bytes.len() as u64, committed);
        let scan = frame::scan(&bytes, 0);
        assert_eq!(scan.frames, vec![b"one".to_vec(), b"two".to_vec()]);

        // 1-byte reads reassemble to the identical stream.
        let mut assembled = Vec::new();
        let mut from = 0;
        loop {
            match log.read_chunk(from, committed, 1).unwrap() {
                ChunkOutcome::Bytes(chunk) => {
                    from += chunk.len() as u64;
                    assembled.extend(chunk);
                }
                ChunkOutcome::CaughtUp => break,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(assembled, bytes);
        assert_eq!(
            log.read_chunk(committed, committed, 64).unwrap(),
            ChunkOutcome::CaughtUp
        );
    }

    #[test]
    fn chunks_stop_at_segment_boundaries_and_the_committed_end() {
        let dir = test_dir("repl-seg");
        let (mut wal, _) = seed_wal(dir.path());
        let boundary = wal.rotate().unwrap();
        wal.append(b"three");
        let committed = wal.commit().unwrap();
        let log = ReplicationLog::new(dir.path(), "r");

        // A read spanning the boundary is cut at it.
        let ChunkOutcome::Bytes(bytes) = log.read_chunk(0, committed, 1 << 20).unwrap() else {
            panic!("expected bytes");
        };
        assert_eq!(bytes.len() as u64, boundary);
        // The next read continues in the second segment.
        let ChunkOutcome::Bytes(rest) = log.read_chunk(boundary, committed, 1 << 20).unwrap()
        else {
            panic!("expected bytes");
        };
        assert_eq!(boundary + rest.len() as u64, committed);

        // An uncommitted append is invisible at the old committed end.
        wal.append(b"uncommitted-group");
        assert_eq!(
            log.read_chunk(committed, committed, 64).unwrap(),
            ChunkOutcome::CaughtUp
        );
    }

    #[test]
    fn gcd_prefix_reads_gone_and_future_reads_ahead() {
        let dir = test_dir("repl-gone");
        let (mut wal, _) = seed_wal(dir.path());
        let boundary = wal.rotate().unwrap();
        wal.append(b"live");
        let committed = wal.commit().unwrap();
        wal.truncate_before(boundary).unwrap();
        let log = ReplicationLog::new(dir.path(), "r");

        assert_eq!(
            log.read_chunk(0, committed, 64).unwrap(),
            ChunkOutcome::Gone
        );
        assert!(matches!(
            log.read_chunk(boundary, committed, 64).unwrap(),
            ChunkOutcome::Bytes(_)
        ));
        assert_eq!(
            log.read_chunk(committed + 1, committed, 64).unwrap(),
            ChunkOutcome::Ahead
        );
        // A claimed committed end beyond the surviving files is the
        // *caller's* inconsistency and also reads Ahead, not invented bytes.
        assert_eq!(
            log.read_chunk(committed + 1, committed + 2, 64).unwrap(),
            ChunkOutcome::Ahead
        );
        // A missing series with committed bytes claimed is Gone, not a read
        // of nothing.
        let none = ReplicationLog::new(dir.path(), "absent");
        assert_eq!(none.read_chunk(0, 10, 64).unwrap(), ChunkOutcome::Gone);
        assert_eq!(none.read_chunk(0, 0, 64).unwrap(), ChunkOutcome::CaughtUp);
    }

    #[test]
    fn notifier_wakes_waiters_and_never_loses_a_preceding_notify() {
        let notifier = Arc::new(CommitNotifier::new());
        assert_eq!(notifier.epoch(), 0);

        // A notify *before* the wait is still observed (no lost wakeup).
        notifier.notify();
        assert_eq!(notifier.wait_beyond(0, Duration::from_secs(5)), 1);

        // A waiter parked on the current epoch is woken by the next notify.
        let waiter = {
            let notifier = Arc::clone(&notifier);
            std::thread::spawn(move || notifier.wait_beyond(1, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        notifier.notify();
        assert_eq!(waiter.join().unwrap(), 2);

        // A timeout returns the unchanged epoch instead of hanging.
        assert_eq!(notifier.wait_beyond(2, Duration::from_millis(10)), 2);
    }
}
