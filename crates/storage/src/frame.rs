//! The on-disk frame format shared by write-ahead logs and metadata files.
//!
//! A frame is `len(u32 BE) ‖ crc(u32 BE) ‖ payload`, where `len` is the
//! payload length and `crc` is the CRC-32 of `len ‖ payload`.  Covering the
//! length field by the checksum means a bit-flip in `len` is caught even when
//! the corrupted length still fits inside the file.
//!
//! [`scan`] is the single reader: it walks a byte buffer frame by frame and
//! stops at the first frame that is torn (runs past the end of the buffer) or
//! corrupt (checksum mismatch).  Everything before the stop point is the
//! *committed prefix*; everything after it is unreachable by construction —
//! once one frame is untrustworthy, so are all boundaries behind it, which is
//! exactly the "truncate, never resurrect" rule the recovery tests pin down.

/// Bytes of frame overhead in front of every payload.
pub const FRAME_HEADER_LEN: usize = 8;

/// Why a scan stopped before the end of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDefect {
    /// The buffer ends inside a frame header or payload (torn write).
    Torn,
    /// The frame's checksum does not match its contents (corruption).
    CrcMismatch,
}

/// The result of scanning a buffer for frames.
#[derive(Debug)]
pub struct FrameScan {
    /// The payloads of every intact frame, in order.
    pub frames: Vec<Vec<u8>>,
    /// Length of the valid prefix in bytes — the boundary after the last
    /// intact frame.  Recovery truncates the file here.
    pub valid_len: u64,
    /// Why the scan stopped, if it stopped before the end of the buffer.
    pub defect: Option<FrameDefect>,
}

/// Appends one frame wrapping `payload` onto `out`.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    let len = (payload.len() as u32).to_be_bytes();
    let mut crc = crate::crc::Crc32::new();
    crc.update(&len);
    crc.update(payload);
    out.extend_from_slice(&len);
    out.extend_from_slice(&crc.finish().to_be_bytes());
    out.extend_from_slice(payload);
}

/// Encodes one frame wrapping `payload`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    append_frame(&mut out, payload);
    out
}

/// Walks `bytes` starting at offset `from`, collecting intact frames and
/// stopping at the first torn or corrupt one.  Never panics, whatever the
/// input: every length is validated against the remaining buffer before use.
pub fn scan(bytes: &[u8], from: u64) -> FrameScan {
    let mut offset = from as usize;
    let mut frames = Vec::new();
    if offset > bytes.len() {
        // The caller's start offset lies beyond the file (e.g. a snapshot
        // that references WAL bytes which no longer exist): nothing here is
        // trustworthy.
        return FrameScan {
            frames,
            valid_len: from,
            defect: Some(FrameDefect::Torn),
        };
    }
    loop {
        let remaining = &bytes[offset..];
        if remaining.is_empty() {
            return FrameScan {
                frames,
                valid_len: offset as u64,
                defect: None,
            };
        }
        if remaining.len() < FRAME_HEADER_LEN {
            return FrameScan {
                frames,
                valid_len: offset as u64,
                defect: Some(FrameDefect::Torn),
            };
        }
        let len_bytes: [u8; 4] = remaining[..4].try_into().expect("4 bytes");
        let payload_len = u32::from_be_bytes(len_bytes) as usize;
        let stored_crc = u32::from_be_bytes(remaining[4..8].try_into().expect("4 bytes"));
        if remaining.len() - FRAME_HEADER_LEN < payload_len {
            return FrameScan {
                frames,
                valid_len: offset as u64,
                defect: Some(FrameDefect::Torn),
            };
        }
        let payload = &remaining[FRAME_HEADER_LEN..FRAME_HEADER_LEN + payload_len];
        let mut crc = crate::crc::Crc32::new();
        crc.update(&len_bytes);
        crc.update(payload);
        if crc.finish() != stored_crc {
            return FrameScan {
                frames,
                valid_len: offset as u64,
                defect: Some(FrameDefect::CrcMismatch),
            };
        }
        frames.push(payload.to_vec());
        offset += FRAME_HEADER_LEN + payload_len;
    }
}

/// Convenience check used by single-frame metadata files: the buffer must be
/// exactly one intact frame.
pub fn decode_single_frame(bytes: &[u8]) -> Option<Vec<u8>> {
    let mut result = scan(bytes, 0);
    if result.defect.is_none() && result.frames.len() == 1 {
        result.frames.pop()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_multiple_frames() {
        let mut buf = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![1], vec![2; 300], b"hello".to_vec()];
        for p in &payloads {
            append_frame(&mut buf, p);
        }
        let scanned = scan(&buf, 0);
        assert_eq!(scanned.frames, payloads);
        assert_eq!(scanned.valid_len, buf.len() as u64);
        assert!(scanned.defect.is_none());
    }

    #[test]
    fn truncation_at_every_byte_keeps_the_longest_committed_prefix() {
        let mut buf = Vec::new();
        let mut boundaries = vec![0u64];
        for i in 0..5u8 {
            append_frame(&mut buf, &vec![i; 10 + i as usize]);
            boundaries.push(buf.len() as u64);
        }
        for cut in 0..=buf.len() {
            let scanned = scan(&buf[..cut], 0);
            // The valid prefix is the largest frame boundary ≤ cut.
            let expected = *boundaries
                .iter()
                .filter(|&&b| b <= cut as u64)
                .max()
                .unwrap();
            assert_eq!(scanned.valid_len, expected, "cut {cut}");
            let expected_frames = boundaries
                .iter()
                .filter(|&&b| b != 0 && b <= cut as u64)
                .count();
            assert_eq!(scanned.frames.len(), expected_frames, "cut {cut}");
            assert_eq!(
                scanned.defect.is_some(),
                (cut as u64) != expected,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn any_single_bit_flip_stops_the_scan_at_that_frame() {
        let mut buf = Vec::new();
        for i in 0..3u8 {
            append_frame(&mut buf, &[i; 16]);
        }
        let frame_len = buf.len() / 3;
        for byte in 0..buf.len() {
            let mut corrupted = buf.clone();
            corrupted[byte] ^= 0x10;
            let scanned = scan(&corrupted, 0);
            let hit_frame = byte / frame_len;
            assert!(
                scanned.frames.len() <= hit_frame,
                "byte {byte}: a frame at or after the corruption was resurrected"
            );
            assert!(scanned.defect.is_some(), "byte {byte}");
            // Frames before the corrupted one always survive.
            assert_eq!(scanned.frames.len(), hit_frame, "byte {byte}");
            assert_eq!(
                scanned.valid_len,
                (hit_frame * frame_len) as u64,
                "byte {byte}"
            );
        }
    }

    #[test]
    fn start_offset_beyond_the_buffer_is_torn_not_a_panic() {
        let scanned = scan(&[1, 2, 3], 100);
        assert!(scanned.frames.is_empty());
        assert_eq!(scanned.defect, Some(FrameDefect::Torn));
    }

    #[test]
    fn single_frame_decoding() {
        let frame = encode_frame(b"meta");
        assert_eq!(decode_single_frame(&frame).unwrap(), b"meta");
        assert!(decode_single_frame(&frame[..frame.len() - 1]).is_none());
        let mut two = frame.clone();
        append_frame(&mut two, b"extra");
        assert!(decode_single_frame(&two).is_none());
    }
}
