//! Generational snapshot files: a full copy of one shard's state, written
//! atomically, so recovery replays `snapshot + WAL tail` instead of the whole
//! log.
//!
//! A snapshot file is `MAGIC ‖ frame(wal_offset(u64 BE) ‖ payload)` — the
//! same CRC-framed envelope as the WAL, so one checksum covers the offset and
//! the entire payload, and any truncation or bit-flip makes the whole file
//! invalid.  `wal_offset` is the WAL frame boundary the snapshot captures:
//! replay resumes there.
//!
//! Writes go to a temporary file which is fsynced and then renamed over the
//! final name (with a directory fsync), so a crash mid-write leaves either
//! the old generation set or the new one — never a half-written file under a
//! live name.  Each write uses a fresh generation number; [`load_newest`]
//! walks generations newest-first and skips invalid files, which is what
//! makes "fall back to the previous snapshot + longer log replay" automatic.

use crate::frame;
use crate::{codec, StorageError};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file.
const MAGIC: &[u8; 4] = b"TBS1";

/// A decoded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// The generation number (monotonically increasing per shard).
    pub gen: u64,
    /// The WAL boundary this snapshot captures; replay resumes here.
    pub wal_offset: u64,
    /// The caller's state encoding.
    pub payload: Vec<u8>,
}

/// The path of generation `gen` of the snapshot series `base` in `dir`.
pub fn snapshot_path(dir: &Path, base: &str, gen: u64) -> PathBuf {
    dir.join(format!("{base}.{gen:016x}.snap"))
}

/// Writes one snapshot generation atomically (`tmp` + fsync + rename + dir
/// fsync).  `sync` may be disabled to match a caller's `Never` fsync policy.
pub fn write_snapshot(
    dir: &Path,
    base: &str,
    gen: u64,
    wal_offset: u64,
    payload: &[u8],
    sync: bool,
) -> io::Result<()> {
    let mut body = Vec::with_capacity(8 + payload.len());
    codec::put_u64(&mut body, wal_offset);
    body.extend_from_slice(payload);
    let mut bytes = Vec::with_capacity(4 + frame::FRAME_HEADER_LEN + body.len());
    bytes.extend_from_slice(MAGIC);
    frame::append_frame(&mut bytes, &body);

    let tmp = dir.join(format!("{base}.snap.tmp"));
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&bytes)?;
        if sync {
            file.sync_data()?;
        }
    }
    fs::rename(&tmp, snapshot_path(dir, base, gen))?;
    if sync {
        // Make the rename itself durable.
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Lists the existing generation numbers of a snapshot series, newest first.
pub fn list_generations(dir: &Path, base: &str) -> io::Result<Vec<u64>> {
    let mut gens = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(base).and_then(|r| r.strip_prefix('.')) else {
            continue;
        };
        let Some(hex) = rest.strip_suffix(".snap") else {
            continue;
        };
        if let Ok(gen) = u64::from_str_radix(hex, 16) {
            gens.push(gen);
        }
    }
    gens.sort_unstable_by(|a, b| b.cmp(a));
    Ok(gens)
}

/// Loads and validates one snapshot generation.
pub fn load_snapshot(dir: &Path, base: &str, gen: u64) -> Result<Snapshot, StorageError> {
    let mut bytes = Vec::new();
    File::open(snapshot_path(dir, base, gen))?.read_to_end(&mut bytes)?;
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(StorageError::Corrupt("snapshot magic mismatch"));
    }
    let body = frame::decode_single_frame(&bytes[4..]).ok_or(StorageError::Corrupt(
        "snapshot frame torn or checksum mismatch",
    ))?;
    let mut reader = codec::Reader::new(&body);
    let wal_offset = reader.u64()?;
    let payload = body[8..].to_vec();
    Ok(Snapshot {
        gen,
        wal_offset,
        payload,
    })
}

/// Loads the newest *valid* snapshot of a series, skipping corrupt or torn
/// generations (the fallback path).  Returns `None` when no generation is
/// loadable — the caller then replays the full WAL.  Also returns how many
/// newer generations had to be skipped, so callers can surface the fallback.
pub fn load_newest(dir: &Path, base: &str) -> io::Result<(Option<Snapshot>, usize)> {
    let mut skipped = 0;
    for gen in list_generations(dir, base)? {
        match load_snapshot(dir, base, gen) {
            Ok(snapshot) => return Ok((Some(snapshot), skipped)),
            Err(_) => skipped += 1,
        }
    }
    Ok((None, skipped))
}

/// Removes all but the newest `keep` generations of a series.  Keeping two
/// generations means the newest can be lost to corruption without losing the
/// snapshot optimisation entirely, while the WAL (which is never trimmed
/// below the *oldest kept* snapshot's offset) still covers full replay.
pub fn prune(dir: &Path, base: &str, keep: usize) -> io::Result<()> {
    for gen in list_generations(dir, base)?.into_iter().skip(keep) {
        fs::remove_file(snapshot_path(dir, base, gen))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    #[test]
    fn write_load_round_trip_and_generations() {
        let dir = test_dir("snap-round-trip");
        write_snapshot(dir.path(), "shard-00", 1, 100, b"state-1", true).unwrap();
        write_snapshot(dir.path(), "shard-00", 2, 250, b"state-2", false).unwrap();
        // A second series in the same directory does not interfere.
        write_snapshot(dir.path(), "shard-01", 9, 7, b"other", false).unwrap();

        assert_eq!(
            list_generations(dir.path(), "shard-00").unwrap(),
            vec![2, 1]
        );
        let (newest, skipped) = load_newest(dir.path(), "shard-00").unwrap();
        let newest = newest.unwrap();
        assert_eq!(skipped, 0);
        assert_eq!((newest.gen, newest.wal_offset), (2, 250));
        assert_eq!(newest.payload, b"state-2");
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = test_dir("snap-fallback");
        write_snapshot(dir.path(), "s", 1, 10, b"old", true).unwrap();
        write_snapshot(dir.path(), "s", 2, 20, b"new", true).unwrap();
        // Flip one payload bit of the newest generation.
        let path = snapshot_path(dir.path(), "s", 2);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        assert!(load_snapshot(dir.path(), "s", 2).is_err());
        let (newest, skipped) = load_newest(dir.path(), "s").unwrap();
        let newest = newest.unwrap();
        assert_eq!(skipped, 1);
        assert_eq!((newest.gen, newest.wal_offset), (1, 10));
        assert_eq!(newest.payload, b"old");

        // Truncating the older one too leaves nothing valid.
        let path = snapshot_path(dir.path(), "s", 1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let (none, skipped) = load_newest(dir.path(), "s").unwrap();
        assert!(none.is_none());
        assert_eq!(skipped, 2);
    }

    #[test]
    fn prune_keeps_the_newest_generations() {
        let dir = test_dir("snap-prune");
        for gen in 1..=5 {
            write_snapshot(dir.path(), "s", gen, gen * 10, b"x", false).unwrap();
        }
        prune(dir.path(), "s", 2).unwrap();
        assert_eq!(list_generations(dir.path(), "s").unwrap(), vec![5, 4]);
        // Pruning an empty tail is a no-op.
        prune(dir.path(), "s", 2).unwrap();
        assert_eq!(list_generations(dir.path(), "s").unwrap(), vec![5, 4]);
    }

    #[test]
    fn magic_and_short_files_are_rejected() {
        let dir = test_dir("snap-magic");
        std::fs::write(snapshot_path(dir.path(), "s", 1), b"BAD").unwrap();
        assert!(load_snapshot(dir.path(), "s", 1).is_err());
        std::fs::write(snapshot_path(dir.path(), "s", 2), b"NOPE-not-a-snapshot").unwrap();
        assert!(load_snapshot(dir.path(), "s", 2).is_err());
        let (none, skipped) = load_newest(dir.path(), "s").unwrap();
        assert!(none.is_none());
        assert_eq!(skipped, 2);
    }
}
