//! Generational snapshot files: a full copy of one shard's state, written
//! atomically, so recovery replays `snapshot + WAL tail` instead of the whole
//! log.  Two layouts share one generation series:
//!
//! * **`TBS1` (monolithic)** — `MAGIC ‖ frame(wal_offset(u64 BE) ‖ payload)`:
//!   the same CRC-framed envelope as the WAL, so one checksum covers the
//!   offset and the entire payload, and any truncation or bit-flip makes the
//!   whole file invalid.  Loading is O(data): the file is read and checksummed
//!   in full.
//! * **`TBS2` (indexed)** — `MAGIC ‖ blob data ‖ frame(trailer) ‖
//!   trailer_frame_len(u64 BE)`: raw blobs concatenated up front, described by
//!   a CRC-framed trailer of `(offset, len, crc, index_meta)` entries plus one
//!   shard-level `meta` blob.  Opening validates only the trailer and serves
//!   blob bytes through a memory map ([`crate::mmap`]), so open cost is
//!   O(index) and data pages fault in only when a blob is actually read.
//!   Each blob carries its own CRC, verified lazily on its first
//!   [`IndexedSnapshot::blob`] read (and memoized thereafter — the mapped
//!   region is immutable) — a data-region bit-flip is an error at *read*
//!   time (never silently served), while trailer damage or truncation fails
//!   the *open*, triggering the same fall-back-a-generation path as a
//!   corrupt `TBS1` file.
//!
//! `wal_offset` in both layouts is the WAL frame boundary the snapshot
//! captures: replay resumes there.
//!
//! Writes go to a temporary file which is fsynced and then renamed over the
//! final name (with a directory fsync), so a crash mid-write leaves either
//! the old generation set or the new one — never a half-written file under a
//! live name.  Each write uses a fresh generation number; [`load_newest`]
//! walks generations newest-first and skips invalid files, which is what
//! makes "fall back to the previous snapshot + longer log replay" automatic.

use crate::frame;
use crate::mmap::Mmap;
use crate::{codec, StorageError};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes opening every monolithic snapshot file.
const MAGIC: &[u8; 4] = b"TBS1";

/// Magic bytes opening every indexed (memory-mappable) snapshot file.
const MAGIC_INDEXED: &[u8; 4] = b"TBS2";

/// A decoded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// The generation number (monotonically increasing per shard).
    pub gen: u64,
    /// The WAL boundary this snapshot captures; replay resumes here.
    pub wal_offset: u64,
    /// The caller's state encoding.
    pub payload: Vec<u8>,
}

/// The path of generation `gen` of the snapshot series `base` in `dir`.
pub fn snapshot_path(dir: &Path, base: &str, gen: u64) -> PathBuf {
    dir.join(format!("{base}.{gen:016x}.snap"))
}

/// Writes one snapshot generation atomically (`tmp` + fsync + rename + dir
/// fsync).  `sync` may be disabled to match a caller's `Never` fsync policy.
pub fn write_snapshot(
    dir: &Path,
    base: &str,
    gen: u64,
    wal_offset: u64,
    payload: &[u8],
    sync: bool,
) -> io::Result<()> {
    let mut body = Vec::with_capacity(8 + payload.len());
    codec::put_u64(&mut body, wal_offset);
    body.extend_from_slice(payload);
    let mut bytes = Vec::with_capacity(4 + frame::FRAME_HEADER_LEN + body.len());
    bytes.extend_from_slice(MAGIC);
    frame::append_frame(&mut bytes, &body);

    let tmp = dir.join(format!("{base}.snap.tmp"));
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&bytes)?;
        if sync {
            file.sync_data()?;
        }
    }
    fs::rename(&tmp, snapshot_path(dir, base, gen))?;
    if sync {
        // Make the rename itself durable.
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Lists the existing generation numbers of a snapshot series, newest first.
pub fn list_generations(dir: &Path, base: &str) -> io::Result<Vec<u64>> {
    let mut gens = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(base).and_then(|r| r.strip_prefix('.')) else {
            continue;
        };
        let Some(hex) = rest.strip_suffix(".snap") else {
            continue;
        };
        if let Ok(gen) = u64::from_str_radix(hex, 16) {
            gens.push(gen);
        }
    }
    gens.sort_unstable_by(|a, b| b.cmp(a));
    Ok(gens)
}

/// Loads and validates one snapshot generation.
pub fn load_snapshot(dir: &Path, base: &str, gen: u64) -> Result<Snapshot, StorageError> {
    let mut bytes = Vec::new();
    File::open(snapshot_path(dir, base, gen))?.read_to_end(&mut bytes)?;
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(StorageError::Corrupt("snapshot magic mismatch"));
    }
    let body = frame::decode_single_frame(&bytes[4..]).ok_or(StorageError::Corrupt(
        "snapshot frame torn or checksum mismatch",
    ))?;
    let mut reader = codec::Reader::new(&body);
    let wal_offset = reader.u64()?;
    let payload = body[8..].to_vec();
    Ok(Snapshot {
        gen,
        wal_offset,
        payload,
    })
}

/// Loads the newest *valid* snapshot of a series, skipping corrupt or torn
/// generations (the fallback path).  Returns `None` when no generation is
/// loadable — the caller then replays the full WAL.  Also returns how many
/// newer generations had to be skipped, so callers can surface the fallback.
pub fn load_newest(dir: &Path, base: &str) -> io::Result<(Option<Snapshot>, usize)> {
    let mut skipped = 0;
    for gen in list_generations(dir, base)? {
        match load_snapshot(dir, base, gen) {
            Ok(snapshot) => return Ok((Some(snapshot), skipped)),
            Err(_) => skipped += 1,
        }
    }
    Ok((None, skipped))
}

/// One blob handed to [`write_indexed_snapshot`].
#[derive(Debug)]
pub struct IndexedBlob<'a> {
    /// The blob's bytes, written verbatim into the data region and covered
    /// by a per-blob CRC in the trailer.
    pub body: &'a [u8],
    /// Opaque caller metadata recorded in the trailer beside the blob's
    /// offset/len/CRC — available at open time without touching a single
    /// data page (e.g. a record header used to rebuild indexes).
    pub index_meta: Vec<u8>,
}

/// Writes one indexed (`TBS2`) snapshot generation atomically, streaming the
/// blobs straight to disk (no contiguous in-memory image is ever built).
///
/// `meta` is one shard-level metadata blob stored inside the trailer; `blobs`
/// yields the data blobs in order.  Blob items are *fallible* so a caller
/// whose blobs come from another (possibly corrupt) mapped snapshot can
/// propagate the read error instead of re-persisting unverified bytes under
/// a fresh checksum.  On any error the temporary file is abandoned and the
/// previous generation set is untouched.
pub fn write_indexed_snapshot<'a, I>(
    dir: &Path,
    base: &str,
    gen: u64,
    wal_offset: u64,
    meta: &[u8],
    blobs: I,
    sync: bool,
) -> Result<(), StorageError>
where
    I: IntoIterator<Item = Result<IndexedBlob<'a>, StorageError>>,
{
    let tmp = dir.join(format!("{base}.snap.tmp"));
    let file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    let mut out = BufWriter::new(file);
    out.write_all(MAGIC_INDEXED)?;

    let mut offset = MAGIC_INDEXED.len() as u64;
    let mut count = 0u64;
    let mut entries = Vec::new();
    for item in blobs {
        let blob = item?;
        let len = u32::try_from(blob.body.len())
            .map_err(|_| StorageError::Corrupt("snapshot blob exceeds the u32 length field"))?;
        let mut crc = crate::crc::Crc32::new();
        crc.update(blob.body);
        out.write_all(blob.body)?;
        codec::put_u64(&mut entries, offset);
        codec::put_u32(&mut entries, len);
        codec::put_u32(&mut entries, crc.finish());
        codec::put_bytes(&mut entries, &blob.index_meta);
        offset += u64::from(len);
        count += 1;
    }

    let mut trailer = Vec::with_capacity(8 + 4 + meta.len() + 8 + entries.len());
    codec::put_u64(&mut trailer, wal_offset);
    codec::put_bytes(&mut trailer, meta);
    codec::put_u64(&mut trailer, count);
    trailer.extend_from_slice(&entries);
    let framed = frame::encode_frame(&trailer);
    out.write_all(&framed)?;
    // The trailing pointer lets the loader find the trailer from the end of
    // the file, which is what keeps this write single-pass.
    out.write_all(&(framed.len() as u64).to_be_bytes())?;

    let file = out
        .into_inner()
        .map_err(|e| StorageError::Io(e.into_error()))?;
    if sync {
        file.sync_data()?;
    }
    drop(file);
    fs::rename(&tmp, snapshot_path(dir, base, gen))?;
    if sync {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// One trailer entry of an indexed snapshot.
#[derive(Debug)]
struct BlobEntry {
    offset: u64,
    len: u32,
    crc: u32,
    /// The entry's `index_meta` bytes, as a range into the trailer payload
    /// (one shared buffer instead of one allocation per blob).
    meta: Range<usize>,
}

/// A loaded indexed (`TBS2`) snapshot: a validated trailer over a
/// memory-mapped data region.
///
/// The constructor checksums only the trailer — O(index).  Blob bytes live in
/// the map and are CRC-verified on their first [`blob`](Self::blob) read
/// (memoized per blob afterwards), so a bit-flip in the data region surfaces
/// as an error at read time rather than as corrupt bytes.
#[derive(Debug)]
pub struct IndexedSnapshot {
    gen: u64,
    wal_offset: u64,
    map: Mmap,
    trailer: Vec<u8>,
    meta: Range<usize>,
    entries: Vec<BlobEntry>,
    /// One bit per blob, set after that blob's first *successful* CRC check.
    /// The data region is immutable once mapped, so a blob that verified
    /// once need never be checksummed again — repeated LRU misses on a hot
    /// mapped record used to pay O(len) checksumming on every read.  A blob
    /// that *fails* never sets its bit, so corruption keeps surfacing on
    /// every read attempt.
    verified: Box<[AtomicU64]>,
}

impl IndexedSnapshot {
    fn from_map(map: Mmap, gen: u64) -> Result<Self, StorageError> {
        let min_len = MAGIC_INDEXED.len() + frame::FRAME_HEADER_LEN + 8;
        if map.len() < min_len || &map[..4] != MAGIC_INDEXED {
            return Err(StorageError::Corrupt("indexed snapshot magic mismatch"));
        }
        let trailer_end = map.len() - 8;
        let frame_len = u64::from_be_bytes(map[trailer_end..].try_into().expect("8 bytes"));
        let trailer_start = usize::try_from(frame_len)
            .ok()
            .and_then(|len| trailer_end.checked_sub(len))
            .filter(|&start| start >= MAGIC_INDEXED.len())
            .ok_or(StorageError::Corrupt(
                "indexed snapshot trailer out of bounds",
            ))?;
        let trailer = frame::decode_single_frame(&map[trailer_start..trailer_end]).ok_or(
            StorageError::Corrupt("indexed snapshot trailer torn or checksum mismatch"),
        )?;

        let data_end = trailer_start as u64;
        let mut r = codec::Reader::new(&trailer);
        let wal_offset = r.u64()?;
        let meta = {
            let start = r.offset() + 4;
            let bytes = r.bytes()?;
            start..start + bytes.len()
        };
        let count = r.u64()?;
        // Each entry occupies ≥ 20 trailer bytes, which bounds a sane count;
        // capping the pre-allocation keeps an absurd count field from
        // turning into an allocation attempt before the parse fails.
        let cap = usize::try_from(count.min(trailer.len() as u64 / 20)).expect("bounded");
        let mut entries = Vec::with_capacity(cap);
        for _ in 0..count {
            let offset = r.u64()?;
            let len = r.u32()?;
            let crc = r.u32()?;
            let meta = {
                let start = r.offset() + 4;
                let bytes = r.bytes()?;
                start..start + bytes.len()
            };
            let end = offset
                .checked_add(u64::from(len))
                .ok_or(StorageError::Corrupt("indexed snapshot blob overflows"))?;
            if offset < MAGIC_INDEXED.len() as u64 || end > data_end {
                return Err(StorageError::Corrupt(
                    "indexed snapshot blob outside the data region",
                ));
            }
            entries.push(BlobEntry {
                offset,
                len,
                crc,
                meta,
            });
        }
        r.finish()?;
        let verified = (0..entries.len().div_ceil(64))
            .map(|_| AtomicU64::new(0))
            .collect();
        Ok(IndexedSnapshot {
            gen,
            wal_offset,
            map,
            trailer,
            meta,
            entries,
            verified,
        })
    }

    /// The generation number this snapshot was loaded from.
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// The WAL boundary this snapshot captures; replay resumes here.
    pub fn wal_offset(&self) -> u64 {
        self.wal_offset
    }

    /// The shard-level metadata blob from the trailer.
    pub fn meta(&self) -> &[u8] {
        &self.trailer[self.meta.clone()]
    }

    /// Number of blobs in the data region.
    pub fn blob_count(&self) -> usize {
        self.entries.len()
    }

    /// Blob `i`'s trailer-resident index metadata (trailer-CRC-protected, no
    /// data page touched).
    pub fn index_meta(&self, i: usize) -> Option<&[u8]> {
        self.entries.get(i).map(|e| &self.trailer[e.meta.clone()])
    }

    /// Blob `i`'s length in bytes, without reading it.
    pub fn blob_len(&self, i: usize) -> Option<usize> {
        self.entries.get(i).map(|e| e.len as usize)
    }

    /// Blob `i`'s bytes, CRC-verified on first read and memoized thereafter.
    ///
    /// This is the lazy half of the corruption contract: the open validated
    /// only the trailer, so a flipped bit in the data region is discovered
    /// here — and surfaces as `Corrupt`, never as silently wrong bytes.  The
    /// mapped region is immutable, so a successful check is recorded in a
    /// per-blob bitmap and skipped on later reads; a
    /// failed check never records, so corruption surfaces on every attempt.
    pub fn blob(&self, i: usize) -> Result<&[u8], StorageError> {
        let entry = self
            .entries
            .get(i)
            .ok_or(StorageError::Corrupt("blob index out of range"))?;
        let start = entry.offset as usize;
        let bytes = &self.map[start..start + entry.len as usize];
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if self.verified[word].load(Ordering::Acquire) & bit == 0 {
            let mut crc = crate::crc::Crc32::new();
            crc.update(bytes);
            if crc.finish() != entry.crc {
                return Err(StorageError::Corrupt("snapshot blob checksum mismatch"));
            }
            self.verified[word].fetch_or(bit, Ordering::Release);
        }
        Ok(bytes)
    }

    /// Whether blob `i` has a recorded successful CRC check (test hook for
    /// the memoization contract).
    #[cfg(test)]
    pub(crate) fn blob_verified(&self, i: usize) -> bool {
        self.verified[i / 64].load(Ordering::Acquire) & (1u64 << (i % 64)) != 0
    }
}

/// Loads and validates one indexed snapshot generation (trailer only — the
/// data region stays untouched until blobs are read).
pub fn load_indexed(dir: &Path, base: &str, gen: u64) -> Result<IndexedSnapshot, StorageError> {
    IndexedSnapshot::from_map(Mmap::map_path(&snapshot_path(dir, base, gen))?, gen)
}

/// Reads one generation's `wal_offset` with whatever validation its layout
/// requires (`TBS1`: full-file CRC; `TBS2`: trailer CRC), dispatching on the
/// magic.  Used by recovery to bound WAL trimming against *older* kept
/// generations without decoding their payloads.
pub fn peek_wal_offset(dir: &Path, base: &str, gen: u64) -> Result<u64, StorageError> {
    let mut magic = [0u8; 4];
    File::open(snapshot_path(dir, base, gen))?.read_exact(&mut magic)?;
    if &magic == MAGIC {
        load_snapshot(dir, base, gen).map(|s| s.wal_offset)
    } else if &magic == MAGIC_INDEXED {
        load_indexed(dir, base, gen).map(|s| s.wal_offset())
    } else {
        Err(StorageError::Corrupt("snapshot magic mismatch"))
    }
}

/// Removes all but the newest `keep` generations of a series.  Keeping two
/// generations means the newest can be lost to corruption without losing the
/// snapshot optimisation entirely, while the WAL (which is never trimmed
/// below the *oldest kept* snapshot's offset) still covers full replay.
pub fn prune(dir: &Path, base: &str, keep: usize) -> io::Result<()> {
    for gen in list_generations(dir, base)?.into_iter().skip(keep) {
        fs::remove_file(snapshot_path(dir, base, gen))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    #[test]
    fn write_load_round_trip_and_generations() {
        let dir = test_dir("snap-round-trip");
        write_snapshot(dir.path(), "shard-00", 1, 100, b"state-1", true).unwrap();
        write_snapshot(dir.path(), "shard-00", 2, 250, b"state-2", false).unwrap();
        // A second series in the same directory does not interfere.
        write_snapshot(dir.path(), "shard-01", 9, 7, b"other", false).unwrap();

        assert_eq!(
            list_generations(dir.path(), "shard-00").unwrap(),
            vec![2, 1]
        );
        let (newest, skipped) = load_newest(dir.path(), "shard-00").unwrap();
        let newest = newest.unwrap();
        assert_eq!(skipped, 0);
        assert_eq!((newest.gen, newest.wal_offset), (2, 250));
        assert_eq!(newest.payload, b"state-2");
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = test_dir("snap-fallback");
        write_snapshot(dir.path(), "s", 1, 10, b"old", true).unwrap();
        write_snapshot(dir.path(), "s", 2, 20, b"new", true).unwrap();
        // Flip one payload bit of the newest generation.
        let path = snapshot_path(dir.path(), "s", 2);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();

        assert!(load_snapshot(dir.path(), "s", 2).is_err());
        let (newest, skipped) = load_newest(dir.path(), "s").unwrap();
        let newest = newest.unwrap();
        assert_eq!(skipped, 1);
        assert_eq!((newest.gen, newest.wal_offset), (1, 10));
        assert_eq!(newest.payload, b"old");

        // Truncating the older one too leaves nothing valid.
        let path = snapshot_path(dir.path(), "s", 1);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let (none, skipped) = load_newest(dir.path(), "s").unwrap();
        assert!(none.is_none());
        assert_eq!(skipped, 2);
    }

    #[test]
    fn prune_keeps_the_newest_generations() {
        let dir = test_dir("snap-prune");
        for gen in 1..=5 {
            write_snapshot(dir.path(), "s", gen, gen * 10, b"x", false).unwrap();
        }
        prune(dir.path(), "s", 2).unwrap();
        assert_eq!(list_generations(dir.path(), "s").unwrap(), vec![5, 4]);
        // Pruning an empty tail is a no-op.
        prune(dir.path(), "s", 2).unwrap();
        assert_eq!(list_generations(dir.path(), "s").unwrap(), vec![5, 4]);
    }

    /// Convenience writer for the indexed-layout tests.
    fn write_indexed(
        dir: &Path,
        base: &str,
        gen: u64,
        wal_offset: u64,
        meta: &[u8],
        blobs: &[(&[u8], &[u8])],
    ) {
        write_indexed_snapshot(
            dir,
            base,
            gen,
            wal_offset,
            meta,
            blobs.iter().map(|&(body, im)| {
                Ok(IndexedBlob {
                    body,
                    index_meta: im.to_vec(),
                })
            }),
            true,
        )
        .unwrap()
    }

    #[test]
    fn indexed_snapshot_round_trips_blobs_meta_and_index_meta() {
        let dir = test_dir("snap-indexed");
        let blobs: &[(&[u8], &[u8])] = &[
            (b"alpha-body", b"alpha-hdr"),
            (b"", b"empty-body-hdr"),
            (&[0xE1; 300], b""),
        ];
        write_indexed(dir.path(), "shard-00", 3, 777, b"shard-meta", blobs);

        let snap = load_indexed(dir.path(), "shard-00", 3).unwrap();
        assert_eq!((snap.gen(), snap.wal_offset()), (3, 777));
        assert_eq!(snap.meta(), b"shard-meta");
        assert_eq!(snap.blob_count(), 3);
        for (i, &(body, im)) in blobs.iter().enumerate() {
            assert_eq!(snap.index_meta(i).unwrap(), im, "blob {i}");
            assert_eq!(snap.blob_len(i).unwrap(), body.len(), "blob {i}");
            assert_eq!(snap.blob(i).unwrap(), body, "blob {i}");
        }
        assert!(snap.index_meta(3).is_none());
        assert!(snap.blob(3).is_err());

        // Both layouts share the generation series and the wal-offset peek.
        write_snapshot(dir.path(), "shard-00", 2, 50, b"old-monolithic", true).unwrap();
        assert_eq!(
            list_generations(dir.path(), "shard-00").unwrap(),
            vec![3, 2]
        );
        assert_eq!(peek_wal_offset(dir.path(), "shard-00", 3).unwrap(), 777);
        assert_eq!(peek_wal_offset(dir.path(), "shard-00", 2).unwrap(), 50);
    }

    #[test]
    fn indexed_snapshot_with_no_blobs_is_valid() {
        let dir = test_dir("snap-indexed-empty");
        write_indexed(dir.path(), "s", 1, 0, b"", &[]);
        let snap = load_indexed(dir.path(), "s", 1).unwrap();
        assert_eq!(snap.blob_count(), 0);
        assert_eq!(snap.meta(), b"");
        assert_eq!(snap.wal_offset(), 0);
    }

    #[test]
    fn data_region_bit_flip_fails_the_read_not_the_open() {
        let dir = test_dir("snap-indexed-dataflip");
        write_indexed(
            dir.path(),
            "s",
            1,
            9,
            b"m",
            &[(b"first-blob", b"h0"), (b"second-blob", b"h1")],
        );
        let path = snapshot_path(dir.path(), "s", 1);
        let mut bytes = std::fs::read(&path).unwrap();
        // Byte 5 sits inside the first blob's body ("irst-blob"...).
        bytes[5] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        // Open succeeds: the trailer is intact and only it is validated.
        let snap = load_indexed(dir.path(), "s", 1).unwrap();
        assert_eq!(snap.index_meta(0).unwrap(), b"h0");
        // The damaged blob errors on read; its neighbour is still served.
        assert!(matches!(
            snap.blob(0),
            Err(StorageError::Corrupt("snapshot blob checksum mismatch"))
        ));
        assert_eq!(snap.blob(1).unwrap(), b"second-blob");
        // A failed check is never memoized: every retry re-verifies and
        // re-fails, while the good neighbour verified exactly once.
        assert!(!snap.blob_verified(0));
        assert!(snap.blob_verified(1));
        assert!(snap.blob(0).is_err());
        assert!(!snap.blob_verified(0));
    }

    #[test]
    fn blob_crc_verification_is_memoized_after_first_success() {
        let dir = test_dir("snap-indexed-memo");
        // 65 blobs so the bitmap spans more than one 64-bit word.
        let bodies: Vec<Vec<u8>> = (0..65u8).map(|i| vec![i; i as usize + 1]).collect();
        let blobs: Vec<(&[u8], &[u8])> = bodies
            .iter()
            .map(|b| (b.as_slice(), b"".as_slice()))
            .collect();
        write_indexed(dir.path(), "s", 1, 0, b"", &blobs);

        let snap = load_indexed(dir.path(), "s", 1).unwrap();
        assert_eq!(snap.blob_count(), bodies.len());
        for (i, body) in bodies.iter().enumerate() {
            assert!(!snap.blob_verified(i), "blob {i} verified before any read");
            assert_eq!(snap.blob(i).unwrap(), body.as_slice());
            assert!(snap.blob_verified(i), "blob {i} not memoized after read");
            // Second read serves the same bytes through the memoized path.
            assert_eq!(snap.blob(i).unwrap(), body.as_slice());
        }
    }

    #[test]
    fn trailer_damage_and_truncation_fail_the_open() {
        let dir = test_dir("snap-indexed-trailer");
        write_indexed(dir.path(), "s", 1, 9, b"m", &[(b"blob-bytes", b"h")]);
        let path = snapshot_path(dir.path(), "s", 1);
        let pristine = std::fs::read(&path).unwrap();

        // A flipped bit anywhere in the trailer frame or the trailing
        // pointer refuses the open.
        let data_len = 4 + b"blob-bytes".len();
        for byte in data_len..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[byte] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            assert!(load_indexed(dir.path(), "s", 1).is_err(), "byte {byte}");
            assert!(peek_wal_offset(dir.path(), "s", 1).is_err(), "byte {byte}");
        }
        // Truncation at every length refuses the open.
        for cut in 0..pristine.len() {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(load_indexed(dir.path(), "s", 1).is_err(), "cut {cut}");
        }
        // The pristine bytes still load (the loop above really was the
        // corruption, not a broken fixture).
        std::fs::write(&path, &pristine).unwrap();
        load_indexed(dir.path(), "s", 1).unwrap();
    }

    #[test]
    fn failing_blob_iterator_abandons_the_write() {
        let dir = test_dir("snap-indexed-failblob");
        write_indexed(dir.path(), "s", 1, 5, b"keep", &[(b"good", b"h")]);
        let blobs = [
            Ok(IndexedBlob {
                body: b"fine".as_slice(),
                index_meta: vec![],
            }),
            Err(StorageError::Corrupt("source blob unreadable")),
        ];
        let err = write_indexed_snapshot(dir.path(), "s", 2, 6, b"", blobs, true).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
        // No generation 2 appeared; generation 1 is untouched.
        assert_eq!(list_generations(dir.path(), "s").unwrap(), vec![1]);
        assert_eq!(load_indexed(dir.path(), "s", 1).unwrap().meta(), b"keep");
    }

    #[test]
    fn monolithic_loader_rejects_indexed_files_and_vice_versa() {
        let dir = test_dir("snap-cross-layout");
        write_snapshot(dir.path(), "s", 1, 10, b"mono", true).unwrap();
        write_indexed(dir.path(), "s", 2, 20, b"idx", &[]);
        assert!(load_snapshot(dir.path(), "s", 2).is_err());
        assert!(load_indexed(dir.path(), "s", 1).is_err());
        // load_newest is the TBS1-only legacy walk: it skips the indexed
        // generation and falls back to the monolithic one.
        let (newest, skipped) = load_newest(dir.path(), "s").unwrap();
        assert_eq!(newest.unwrap().gen, 1);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn magic_and_short_files_are_rejected() {
        let dir = test_dir("snap-magic");
        std::fs::write(snapshot_path(dir.path(), "s", 1), b"BAD").unwrap();
        assert!(load_snapshot(dir.path(), "s", 1).is_err());
        std::fs::write(snapshot_path(dir.path(), "s", 2), b"NOPE-not-a-snapshot").unwrap();
        assert!(load_snapshot(dir.path(), "s", 2).is_err());
        let (none, skipped) = load_newest(dir.path(), "s").unwrap();
        assert!(none.is_none());
        assert_eq!(skipped, 2);
    }
}
