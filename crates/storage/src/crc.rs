//! CRC-32 (ISO-HDLC, the ubiquitous `0xEDB88320` reflected polynomial).
//!
//! Every frame and snapshot this crate writes carries a CRC-32 over its
//! length field and payload, so recovery can tell a committed frame from a
//! torn or bit-rotted one without trusting anything else in the file.  The
//! checksum guards against *accidents* (torn writes, disk rot); it is not a
//! MAC and offers no protection against a malicious storage server — that
//! threat is handled a layer up, by the AEAD binding inside the ciphertexts
//! themselves.

/// The reflected generator polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// Slice-by-8 lookup tables, built once at compile time (8 × 256 × 4 bytes).
///
/// `TABLES[0]` is the classic bytewise table; `TABLES[k][i]` is the CRC of
/// byte `i` followed by `k` zero bytes.  Processing eight input bytes per
/// step breaks the one-lookup-per-byte dependency chain of the bytewise
/// loop, which matters because this CRC sits on the hot ingest path: every
/// WAL frame append and every snapshot blob (write *and* each lazy mapped
/// read) checksums its full payload through here.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// A streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes(chunk[..4].try_into().expect("4 bytes")) ^ state;
            let hi = u32::from_le_bytes(chunk[4..].try_into().expect("4 bytes"));
            state = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &byte in chunks.remainder() {
            state = (state >> 8) ^ TABLES[0][((state ^ u32::from(byte)) & 0xFF) as usize];
        }
        self.state = state;
    }

    /// Finalizes and returns the checksum value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"split across several updates";
        let mut crc = Crc32::new();
        for chunk in data.chunks(5) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32(data));
    }

    /// Bit-at-a-time reference implementation, straight from the polynomial.
    fn crc32_bitwise(bytes: &[u8]) -> u32 {
        let mut state = !0u32;
        for &byte in bytes {
            state ^= u32::from(byte);
            for _ in 0..8 {
                state = if state & 1 != 0 {
                    (state >> 1) ^ POLY
                } else {
                    state >> 1
                };
            }
        }
        !state
    }

    #[test]
    fn slice_by_8_matches_the_bitwise_reference_at_every_length() {
        // 0..=64 covers every remainder shape of the 8-byte inner loop, plus
        // a few longer, non-multiple-of-8 sizes.
        let data: Vec<u8> = (0u32..1024)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for len in (0..=64).chain([100, 255, 777, 1024]) {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bitwise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = vec![0xA5u8; 64];
        let baseline = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), baseline, "byte {byte} bit {bit}");
            }
        }
    }
}
