//! CRC-32 (ISO-HDLC, the ubiquitous `0xEDB88320` reflected polynomial).
//!
//! Every frame and snapshot this crate writes carries a CRC-32 over its
//! length field and payload, so recovery can tell a committed frame from a
//! torn or bit-rotted one without trusting anything else in the file.  The
//! checksum guards against *accidents* (torn writes, disk rot); it is not a
//! MAC and offers no protection against a malicious storage server — that
//! threat is handled a layer up, by the AEAD binding inside the ciphertexts
//! themselves.

/// The reflected generator polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built once at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            let idx = (self.state ^ u32::from(byte)) & 0xFF;
            self.state = (self.state >> 8) ^ TABLE[idx as usize];
        }
    }

    /// Finalizes and returns the checksum value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"split across several updates";
        let mut crc = Crc32::new();
        for chunk in data.chunks(5) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = vec![0xA5u8; 64];
        let baseline = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), baseline, "byte {byte} bit {bit}");
            }
        }
    }
}
