//! Field codec — absorbed by [`tibpre_wire`].
//!
//! This module used to define its own length-prefixed field codec; the
//! workspace now has exactly one (`tibpre-wire`), shared by the wire
//! formats of every crate and by the storage payloads.  The re-exports
//! below keep the old `storage::codec::*` paths working; decode failures
//! surface as [`tibpre_wire::DecodeError`] and convert into
//! [`StorageError`](crate::StorageError) via `From`.

pub use tibpre_wire::{put_bytes, put_u32, put_u64, DecodeError, Reader, Writer};
