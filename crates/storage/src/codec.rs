//! Tiny field codec used inside frame and snapshot payloads.
//!
//! Frames delimit *operations*; inside a payload the individual fields are
//! length-prefixed with the same big-endian conventions the workspace's
//! ciphertext serializations already use (`u32 BE` length + bytes).  The
//! [`Reader`] is a bounds-checked cursor: every decode error is a value, not
//! a panic, so a corrupted payload can never take the process down — recovery
//! treats it exactly like a bad checksum.

use crate::StorageError;

/// Appends a `u32` big-endian.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_be_bytes());
}

/// Appends a `u64` big-endian.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_be_bytes());
}

/// Appends a length-prefixed byte string (`u32 BE` length, then the bytes).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// A bounds-checked decoding cursor over a payload.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, offset: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.offset
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.remaining() < n {
            return Err(StorageError::Corrupt("payload shorter than a field"));
        }
        let slice = &self.bytes[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32 BE`.
    pub fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64 BE`.
    pub fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], StorageError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, StorageError> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| StorageError::Corrupt("field is not valid UTF-8"))
    }

    /// Asserts the payload is fully consumed (catches trailing garbage).
    pub fn finish(self) -> Result<(), StorageError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StorageError::Corrupt("trailing bytes after payload"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_fields() {
        let mut out = Vec::new();
        out.push(7u8);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, 42);
        put_bytes(&mut out, b"payload");
        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.bytes().unwrap(), b"payload");
        r.finish().unwrap();
    }

    #[test]
    fn short_and_trailing_inputs_are_errors_not_panics() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"abc");
        // Truncation anywhere fails cleanly.
        for cut in 0..out.len() {
            let mut r = Reader::new(&out[..cut]);
            assert!(r.bytes().is_err(), "cut {cut}");
        }
        // A length field larger than the buffer fails cleanly.
        let mut huge = Vec::new();
        put_u32(&mut huge, u32::MAX);
        assert!(Reader::new(&huge).bytes().is_err());
        // Trailing garbage is caught by finish().
        let mut extra = out.clone();
        extra.push(0);
        let mut r = Reader::new(&extra);
        r.bytes().unwrap();
        assert!(r.finish().is_err());
    }
}
