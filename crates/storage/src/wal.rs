//! The append-only write-ahead log: one segment file, CRC-framed records,
//! group-commit flushing under a configurable fsync policy.
//!
//! A [`WalWriter`] buffers appended frames in memory and pushes them to the
//! OS in one `write` per [`WalWriter::commit`] — the *group commit*: a caller
//! that appends several operations before committing pays one syscall (and at
//! most one fsync) for the whole group.  Durability against power loss is
//! governed by the [`FsyncPolicy`]: `Always` fsyncs every
//! commit, `EveryN(n)` amortizes the fsync over `n` commits (bounding the
//! window of committed-but-unsynced data), `Never` leaves flushing to the OS.
//!
//! Recovery ([`WalWriter::recover`]) reads the segment, walks its frames, and
//! reports the longest committed prefix; [`WalWriter::open`] then truncates
//! the file to that boundary before appending — a torn tail is physically
//! removed, so later writes can never make garbage look committed again.

use crate::frame::{self, FrameScan};
use crate::FsyncPolicy;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// An open write-ahead log segment.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// Encoded frames appended since the last commit.
    buf: Vec<u8>,
    /// File length after the last commit — always a frame boundary.
    committed_len: u64,
    policy: FsyncPolicy,
    commits_since_sync: u32,
}

impl WalWriter {
    /// Reads the segment at `path` (a missing file is an empty log) and scans
    /// its frames starting at `from`, stopping at the first torn or corrupt
    /// frame.
    pub fn recover(path: &Path, from: u64) -> io::Result<FrameScan> {
        let bytes = match File::open(path) {
            Ok(mut file) => {
                let mut bytes = Vec::new();
                file.read_to_end(&mut bytes)?;
                bytes
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok(frame::scan(&bytes, from))
    }

    /// Opens the segment for appending, first truncating it to
    /// `committed_len` (the valid prefix a [`Self::recover`] scan reported)
    /// so a torn tail is physically removed.  On creation the parent
    /// directory is fsynced (unless the policy is `Never`): `sync_data` on
    /// the file alone does not persist a brand-new directory entry, and a
    /// WAL whose *name* can vanish in a power cut is not a WAL.
    pub fn open(path: &Path, committed_len: u64, policy: FsyncPolicy) -> io::Result<Self> {
        let created = !path.exists();
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if created && policy != FsyncPolicy::Never {
            if let Some(parent) = path.parent() {
                File::open(parent)?.sync_all()?;
            }
        }
        file.set_len(committed_len)?;
        let mut writer = WalWriter {
            file,
            path: path.to_path_buf(),
            buf: Vec::new(),
            committed_len,
            policy,
            commits_since_sync: 0,
        };
        writer.file.seek(SeekFrom::Start(committed_len))?;
        Ok(writer)
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// File length after the last commit (a frame boundary).  Uncommitted
    /// appends are not included — they do not exist on disk yet.
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// Appends one frame to the in-memory group.  Nothing reaches the file
    /// until [`Self::commit`].
    pub fn append(&mut self, payload: &[u8]) {
        frame::append_frame(&mut self.buf, payload);
    }

    /// Writes the buffered group to the file in one `write`, then fsyncs
    /// according to the policy.  Returns the new committed length.
    pub fn commit(&mut self) -> io::Result<u64> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.committed_len += self.buf.len() as u64;
            self.buf.clear();
        }
        self.commits_since_sync += 1;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.commits_since_sync >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if due {
            self.file.sync_data()?;
            self.commits_since_sync = 0;
        }
        Ok(self.committed_len)
    }

    /// Commits any buffered frames and forces an fsync regardless of policy
    /// (clean shutdown, or a snapshot about to reference this offset).
    pub fn sync(&mut self) -> io::Result<u64> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.committed_len += self.buf.len() as u64;
            self.buf.clear();
        }
        self.file.sync_data()?;
        self.commits_since_sync = 0;
        Ok(self.committed_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameDefect;
    use crate::test_dir;

    #[test]
    fn append_commit_recover_round_trip() {
        let dir = test_dir("wal-round-trip");
        let path = dir.path().join("seg.wal");
        let mut wal = WalWriter::open(&path, 0, FsyncPolicy::Never).unwrap();
        wal.append(b"one");
        wal.append(b"two");
        let len = wal.commit().unwrap();
        wal.append(b"three");
        wal.sync().unwrap();
        drop(wal);

        let scan = WalWriter::recover(&path, 0).unwrap();
        assert_eq!(
            scan.frames,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        assert!(scan.defect.is_none());
        assert!(scan.valid_len > len);

        // Replay from a mid-log boundary.
        let tail = WalWriter::recover(&path, len).unwrap();
        assert_eq!(tail.frames, vec![b"three".to_vec()]);
    }

    #[test]
    fn open_truncates_the_torn_tail() {
        let dir = test_dir("wal-truncate");
        let path = dir.path().join("seg.wal");
        let mut wal = WalWriter::open(&path, 0, FsyncPolicy::Always).unwrap();
        wal.append(b"committed");
        wal.commit().unwrap();
        drop(wal);
        // Simulate a torn write: half a frame appended by a crashed process.
        let mut bytes = std::fs::read(&path).unwrap();
        let good_len = bytes.len() as u64;
        bytes.extend_from_slice(&frame::encode_frame(b"torn")[..5]);
        std::fs::write(&path, &bytes).unwrap();

        let scan = WalWriter::recover(&path, 0).unwrap();
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.defect, Some(FrameDefect::Torn));
        let mut wal = WalWriter::open(&path, scan.valid_len, FsyncPolicy::Always).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        // New appends land on the clean boundary and recover intact.
        wal.append(b"after-crash");
        wal.commit().unwrap();
        drop(wal);
        let scan = WalWriter::recover(&path, 0).unwrap();
        assert_eq!(
            scan.frames,
            vec![b"committed".to_vec(), b"after-crash".to_vec()]
        );
        assert!(scan.defect.is_none());
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let dir = test_dir("wal-missing");
        let scan = WalWriter::recover(&dir.path().join("nope.wal"), 0).unwrap();
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(scan.defect.is_none());
    }
}
