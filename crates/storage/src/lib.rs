//! Durable storage substrate for the TIB-PRE workspace: CRC-framed
//! write-ahead logs and generational snapshots.
//!
//! The paper's PHR scenario assumes the semi-trusted server keeps encrypted
//! records and audit trails *long-term*; this crate supplies the recoverable
//! on-disk layer underneath the application stores.  It is deliberately
//! byte-oriented and application-agnostic — `tibpre-phr` defines what goes
//! inside a frame, this crate defines what makes a frame *committed*:
//!
//! * [`frame`] — the length-prefixed, CRC-32-checksummed frame envelope and
//!   the scan that stops at the first torn or corrupt frame,
//! * [`wal`] — the append-only segment writer with group-commit flushing and
//!   a configurable [`FsyncPolicy`],
//! * [`snapshot`] — atomically-written, generational full-state snapshots
//!   with automatic fallback to older generations, in two layouts: the
//!   monolithic `TBS1` form and the indexed `TBS2` form served through
//!   memory maps,
//! * [`mmap`] — a minimal read-only memory-map shim (the offline build has
//!   no `memmap2`), so `TBS2` opens are page-fault-driven,
//! * [`codec`] — the bounds-checked field codec used inside payloads,
//! * [`crc`] — CRC-32/ISO-HDLC,
//! * [`TempDir`] — a dependency-free temporary directory for the crash and
//!   recovery test harnesses (this workspace is built offline and has no
//!   `tempfile` crate).
//!
//! The recovery contract, which `tests/tests/recovery_props.rs` pins down
//! property-by-property: replaying `newest valid snapshot + WAL tail` after a
//! kill at *any* byte offset reconstructs exactly the longest committed
//! prefix of operations — no panic, no partial frame applied, no frame after
//! a corruption ever resurrected.

// `deny` rather than `forbid`: the [`mmap`] module opts back in for its two
// FFI calls; every other module stays safe-only.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod frame;
pub mod mmap;
pub mod replication;
pub mod segment;
pub mod snapshot;
pub mod wal;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

pub use frame::{FrameDefect, FrameScan};
pub use mmap::Mmap;
pub use replication::{ChunkOutcome, CommitNotifier, ReplicationLog};
pub use segment::{SegmentedWal, SegmentedWalScan};
pub use snapshot::{IndexedSnapshot, Snapshot};
pub use wal::WalWriter;

/// When the write-ahead log fsyncs.
///
/// Group commits always reach the OS page cache in one `write`; the policy
/// decides how often the file is additionally forced to stable storage.  The
/// trade-off is the classic one: `Always` survives power loss at commit
/// granularity, `Never` survives process crashes (the kernel still holds the
/// pages) but not power loss, `EveryN` bounds the power-loss window to `n`
/// commits.  `TIBPRE_FSYNC` selects the policy at deployment time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` on every commit (the durable default).
    Always,
    /// `fsync` once per `n` commits.
    EveryN(u32),
    /// Never `fsync`; the OS flushes on its own schedule.
    Never,
}

impl FsyncPolicy {
    /// Reads the policy from the `TIBPRE_FSYNC` environment variable:
    /// `always`, `never`, or `every=N`.  Unset or unparsable values fall
    /// back to `Always` — a typo must degrade performance, not durability.
    pub fn from_env() -> Self {
        match std::env::var("TIBPRE_FSYNC") {
            Ok(spec) => Self::parse(&spec).unwrap_or(FsyncPolicy::Always),
            Err(_) => FsyncPolicy::Always,
        }
    }

    /// Parses a policy specification (`always` / `never` / `every=N`).
    pub fn parse(spec: &str) -> Option<Self> {
        let spec = spec.trim().to_ascii_lowercase();
        match spec.as_str() {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            other => {
                let n = other.strip_prefix("every=")?.parse::<u32>().ok()?;
                Some(FsyncPolicy::EveryN(n.max(1)))
            }
        }
    }
}

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// A file's contents failed validation (checksum, magic, field bounds).
    Corrupt(&'static str),
    /// A payload failed to decode (truncation, bad tag, trailing bytes).
    Decode(tibpre_wire::DecodeError),
    /// Another process holds the advisory lock on the store.
    Locked(PathBuf),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::Corrupt(why) => write!(f, "corrupt storage file: {why}"),
            StorageError::Decode(e) => write!(f, "corrupt storage payload: {e}"),
            StorageError::Locked(path) => write!(
                f,
                "another process holds the lock {} — refusing to open the same store twice",
                path.display()
            ),
        }
    }
}

/// An advisory exclusive lock guarding a store against concurrent opens.
///
/// Two processes opening the same durable store would be fatal: the second
/// open truncates WAL tails the first is still appending to, and both would
/// write from independent offsets.  The lock is an OS advisory file lock
/// (`flock`-style via [`std::fs::File::try_lock`]), so it is released
/// automatically when the process exits — including `SIGKILL`, which is
/// exactly the crash scenario the WAL exists for; a stale-lockfile scheme
/// would break crash recovery.
#[derive(Debug)]
pub struct DirLock {
    // Held only for the lock's lifetime; the OS releases it on close.
    _file: std::fs::File,
    path: PathBuf,
}

impl DirLock {
    /// Acquires the lock file at `path` (created if missing).  Fails with
    /// [`StorageError::Locked`] when another live process holds it.
    pub fn acquire(path: &Path) -> Result<Self, StorageError> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        match file.try_lock() {
            Ok(()) => Ok(DirLock {
                _file: file,
                path: path.to_path_buf(),
            }),
            Err(std::fs::TryLockError::WouldBlock) => Err(StorageError::Locked(path.to_path_buf())),
            Err(std::fs::TryLockError::Error(e)) => Err(StorageError::Io(e)),
        }
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<tibpre_wire::DecodeError> for StorageError {
    fn from(e: tibpre_wire::DecodeError) -> Self {
        StorageError::Decode(e)
    }
}

/// Monotonic discriminator for [`TempDir`] names within one process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely-named temporary directory, removed on drop.
///
/// The offline build has no `tempfile` crate; the recovery tests, the
/// durability bench and the durable `store_concurrency` mode all need
/// scratch directories, so this crate carries the ~30 lines itself.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `TMPDIR/tibpre-<tag>-<pid>-<n>`.
    pub fn new(tag: &str) -> io::Result<Self> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("tibpre-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the guard without deleting the directory (for post-mortem
    /// inspection of a failing test).
    pub fn keep(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

/// Unit-test helper: a tempdir tagged with the test name.
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> TempDir {
    TempDir::new(tag).expect("create temp dir")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parsing() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse(" Never "), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every=8"), Some(FsyncPolicy::EveryN(8)));
        assert_eq!(FsyncPolicy::parse("every=0"), Some(FsyncPolicy::EveryN(1)));
        assert_eq!(FsyncPolicy::parse("every=x"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn temp_dirs_are_unique_and_cleaned_up() {
        let a = test_dir("lib");
        let b = test_dir("lib");
        assert_ne!(a.path(), b.path());
        let kept = a.path().to_path_buf();
        std::fs::write(kept.join("f"), b"x").unwrap();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().exists());
    }

    #[test]
    fn dir_lock_excludes_a_second_holder_until_released() {
        let dir = test_dir("lock");
        let path = dir.path().join("LOCK");
        let lock = DirLock::acquire(&path).unwrap();
        assert_eq!(lock.path(), path);
        assert!(matches!(
            DirLock::acquire(&path),
            Err(StorageError::Locked(_))
        ));
        drop(lock);
        DirLock::acquire(&path).unwrap();
    }

    #[test]
    fn storage_error_display() {
        let e = StorageError::Corrupt("bad frame");
        assert!(e.to_string().contains("bad frame"));
        let e: StorageError = io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
    }
}
