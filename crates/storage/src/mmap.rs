//! A minimal read-only memory map over `std::fs::File` — the page-fault-
//! driven byte source behind indexed snapshots.
//!
//! The workspace is built offline, so there is no `memmap2` crate; this
//! module carries the ~60 lines of `mmap(2)` FFI itself.  The shim is
//! deliberately tiny and read-only:
//!
//! * **Unix**: `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)`, unmapped on
//!   drop.  The mapping is private and read-only, so the kernel pages bytes
//!   in on first touch — opening a multi-gigabyte snapshot costs only the
//!   pages actually dereferenced.  A mapped file whose *name* is later
//!   unlinked (snapshot pruning) stays valid: the inode lives until the last
//!   mapping is gone.  Callers must not map files that another process may
//!   *truncate* while mapped (a touch past the new end would fault); every
//!   snapshot in this workspace is immutable once renamed into place, which
//!   is what makes mapping them sound.
//! * **Everywhere else**: the file is simply read into memory.  Same API,
//!   same semantics, no laziness — correctness does not depend on the map
//!   being lazy anywhere.
//!
//! This is the one module in `tibpre-storage` allowed to use `unsafe` (the
//! crate is `deny(unsafe_code)` elsewhere); the unsafety is confined to the
//! two FFI calls and the slice construction over the mapped range.

#![allow(unsafe_code)]

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// A read-only byte view of an entire file.
///
/// Dereferences to `&[u8]`.  `Send + Sync`: the mapping is immutable for its
/// whole lifetime (see the module docs for the no-truncation precondition).
#[derive(Debug)]
pub struct Mmap {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    /// Zero-length files: `mmap` rejects `len == 0`, and an empty slice
    /// needs no backing anyway.
    Empty,
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    #[cfg(not(unix))]
    Buffered(Vec<u8>),
}

// SAFETY: the mapping is created read-only (`PROT_READ`, `MAP_PRIVATE`) and
// never mutated or remapped; sharing immutable bytes across threads is safe.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod ffi {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mmap {
    /// Maps the file at `path` read-only in its entirety.
    pub fn map_path(path: &Path) -> io::Result<Mmap> {
        Self::map_file(&File::open(path)?)
    }

    /// Maps an open file read-only in its entirety.
    pub fn map_file(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::other("file too large to map on this platform"))?;
        if len == 0 {
            return Ok(Mmap {
                inner: Inner::Empty,
            });
        }
        Self::map_nonempty(file, len)
    }

    #[cfg(unix)]
    fn map_nonempty(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is a valid open file for the duration of the call; a
        // NULL hint with MAP_PRIVATE|PROT_READ asks the kernel for a fresh
        // read-only mapping it fully owns.  The result is checked below.
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            inner: Inner::Mapped {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    #[cfg(not(unix))]
    fn map_nonempty(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = Vec::with_capacity(len);
        let mut file = file.try_clone()?;
        file.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: Inner::Buffered(buf),
        })
    }

    /// The mapped length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Empty => &[],
            #[cfg(unix)]
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; it is unmapped only in Drop, after every borrow ends.
            Inner::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            #[cfg(not(unix))]
            Inner::Buffered(buf) => buf,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: the pointer came from a successful mmap of exactly
            // `len` bytes and is unmapped exactly once.
            unsafe {
                ffi::munmap(ptr as *mut std::os::raw::c_void, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    #[test]
    fn maps_file_contents_byte_for_byte() {
        let dir = test_dir("mmap-bytes");
        let path = dir.path().join("blob");
        let data: Vec<u8> = (0..4096u32).flat_map(|i| i.to_be_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let map = Mmap::map_path(&path).unwrap();
        assert_eq!(map.len(), data.len());
        assert_eq!(&map[..], &data[..]);
        assert!(!map.is_empty());
    }

    #[test]
    fn empty_files_map_to_empty_slices() {
        let dir = test_dir("mmap-empty");
        let path = dir.path().join("empty");
        std::fs::write(&path, b"").unwrap();
        let map = Mmap::map_path(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], b"");
    }

    #[test]
    fn missing_files_error_cleanly() {
        let dir = test_dir("mmap-missing");
        assert!(Mmap::map_path(&dir.path().join("nope")).is_err());
    }

    #[test]
    fn mapping_survives_unlink_of_the_name() {
        // Snapshot pruning deletes *names* while readers may still hold the
        // mapping; the bytes must stay readable until the map drops.
        let dir = test_dir("mmap-unlink");
        let path = dir.path().join("pruned");
        std::fs::write(&path, b"still here").unwrap();
        let map = Mmap::map_path(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(&map[..], b"still here");
    }

    #[test]
    fn maps_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mmap>();
    }
}
