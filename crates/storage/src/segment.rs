//! Segmented write-ahead logs: one logical, append-only frame stream split
//! across rotating segment files, so the prefix behind a snapshot can be
//! **deleted** instead of living forever.
//!
//! A single-file WAL can only grow: snapshots bound *recovery time* but not
//! *disk usage*, because nothing below the snapshot offset can be reclaimed
//! from a plain file.  A [`SegmentedWal`] addresses the log by a monotonic
//! **logical offset** — the byte position in the concatenation of every
//! frame ever committed — and maps it onto files:
//!
//! * the first segment keeps the legacy name `<base>.wal` (so logs written
//!   before segmentation existed open unchanged, as a one-segment WAL),
//! * every later segment is `<base>.<start:016x>.wal`, named by the logical
//!   offset at which it starts.
//!
//! Rotation happens at frame boundaries only (the caller rotates right
//! before capturing a snapshot, so snapshot offsets land exactly on
//! segment boundaries), the old segment is fsynced before the new one is
//! created, and segment starts are contiguous by construction:
//! `next.start = prev.start + prev.len`.  A chain gap therefore means
//! corruption and stops recovery at the last intact boundary — the same
//! "truncate, never resurrect" rule the frame scanner applies within one
//! file.
//!
//! Garbage collection ([`SegmentedWal::truncate_before`]) deletes segments
//! that lie **wholly** behind a caller-supplied boundary (the oldest kept
//! snapshot's offset).  The active segment is never deleted.  Because the
//! caller never passes a boundary above the oldest snapshot it intends to
//! keep, recovery from any kept snapshot always finds its starting offset
//! on disk.

use crate::frame::{self, FrameDefect};
use crate::wal::WalWriter;
use crate::FsyncPolicy;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// One segment file of a logical WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Logical offset of the segment's first byte.
    pub start: u64,
    /// Current file length in bytes.
    pub len: u64,
    /// The segment file's path.
    pub path: PathBuf,
}

impl SegmentInfo {
    /// Logical offset one past the segment's last byte.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// The path of the first (legacy-named) segment: `<base>.wal`.
pub fn first_segment_path(dir: &Path, base: &str) -> PathBuf {
    dir.join(format!("{base}.wal"))
}

/// The path of the segment starting at logical offset `start`.
pub fn segment_path(dir: &Path, base: &str, start: u64) -> PathBuf {
    if start == 0 {
        first_segment_path(dir, base)
    } else {
        dir.join(format!("{base}.{start:016x}.wal"))
    }
}

/// Lists the on-disk segments of the series `base`, sorted by logical
/// start offset.  A directory with only a legacy `<base>.wal` lists as a
/// single segment starting at 0.
pub fn list_segments(dir: &Path, base: &str) -> io::Result<Vec<SegmentInfo>> {
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(base) else {
            continue;
        };
        let start = if rest == ".wal" {
            0
        } else {
            // ".{start:016x}.wal"
            let Some(hex) = rest
                .strip_prefix('.')
                .and_then(|r| r.strip_suffix(".wal"))
                .filter(|h| h.len() == 16)
            else {
                continue;
            };
            let Ok(start) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            start
        };
        segments.push(SegmentInfo {
            start,
            len: entry.metadata()?.len(),
            path: entry.path(),
        });
    }
    segments.sort_unstable_by_key(|s| s.start);
    Ok(segments)
}

/// Logical offset one past the last byte present on disk (0 for a series
/// with no segments).
pub fn available_end(dir: &Path, base: &str) -> io::Result<u64> {
    Ok(list_segments(dir, base)?.last().map_or(0, SegmentInfo::end))
}

/// The result of scanning a segmented WAL for frames.
#[derive(Debug)]
pub struct SegmentedWalScan {
    /// The payloads of every intact frame at or after the scan's starting
    /// offset, in logical order.
    pub frames: Vec<Vec<u8>>,
    /// Logical offset after the last intact frame; the append boundary.
    pub valid_len: u64,
    /// Why the scan stopped early, if it did (a torn tail, a checksum
    /// mismatch, or a broken segment chain).
    pub defect: Option<FrameDefect>,
}

/// Scans the series for frames starting at logical offset `from`, reading
/// only the bytes at or behind `from` (earlier segments are skipped
/// without being read, mid-segment starts are `seek`ed to).  Stops at the
/// first torn or corrupt frame, or at a break in the segment chain.
pub fn recover(dir: &Path, base: &str, from: u64) -> io::Result<SegmentedWalScan> {
    let segments = match list_segments(dir, base) {
        Ok(segments) => segments,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut frames = Vec::new();
    let mut valid = from;
    // `from` below the first surviving segment means the caller's snapshot
    // references GC'd bytes; nothing reachable from there is trustworthy.
    if let Some(first) = segments.first() {
        if from < first.start {
            return Ok(SegmentedWalScan {
                frames,
                valid_len: from,
                defect: Some(FrameDefect::Torn),
            });
        }
    } else if from > 0 {
        return Ok(SegmentedWalScan {
            frames,
            valid_len: from,
            defect: Some(FrameDefect::Torn),
        });
    }
    let mut expected_start: Option<u64> = None;
    for segment in &segments {
        if let Some(expected) = expected_start {
            if segment.start != expected {
                // Chain gap or overlap: everything from here is unreachable.
                return Ok(SegmentedWalScan {
                    frames,
                    valid_len: valid,
                    defect: Some(FrameDefect::Torn),
                });
            }
        }
        expected_start = Some(segment.end());
        if segment.end() <= from {
            continue; // wholly behind the starting offset: skip unread
        }
        let skip = from.saturating_sub(segment.start);
        let mut file = File::open(&segment.path)?;
        if skip > 0 {
            file.seek(SeekFrom::Start(skip))?;
        }
        let mut bytes = Vec::with_capacity((segment.len - skip) as usize);
        file.read_to_end(&mut bytes)?;
        let scan = frame::scan(&bytes, 0);
        frames.extend(scan.frames);
        valid = segment.start + skip + scan.valid_len;
        if scan.defect.is_some() {
            return Ok(SegmentedWalScan {
                frames,
                valid_len: valid,
                defect: scan.defect,
            });
        }
    }
    Ok(SegmentedWalScan {
        frames,
        valid_len: valid,
        defect: None,
    })
}

/// A segmented write-ahead log opened for appending.
#[derive(Debug)]
pub struct SegmentedWal {
    dir: PathBuf,
    base: String,
    active: WalWriter,
    active_start: u64,
    policy: FsyncPolicy,
}

impl SegmentedWal {
    /// Opens the series for appending at logical offset `committed` (the
    /// `valid_len` a [`recover`] scan reported).  Segments wholly beyond
    /// the boundary are deleted and the segment containing it is truncated
    /// to it — a torn or unreachable tail is physically removed.
    pub fn open(dir: &Path, base: &str, committed: u64, policy: FsyncPolicy) -> io::Result<Self> {
        let segments = list_segments(dir, base)?;
        // The segment that will become the active tail: the one containing
        // `committed`, or a fresh one starting exactly there.
        let mut active_start = 0;
        for segment in &segments {
            if segment.start <= committed {
                active_start = segment.start;
            }
            if segment.start > committed {
                // Beyond the valid boundary: unreachable, remove.
                std::fs::remove_file(&segment.path)?;
            }
        }
        let path = segment_path(dir, base, active_start);
        let active = WalWriter::open(&path, committed - active_start, policy)?;
        Ok(SegmentedWal {
            dir: dir.to_path_buf(),
            base: base.to_string(),
            active,
            active_start,
            policy,
        })
    }

    /// The series' base name.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// The active segment's path.
    pub fn active_path(&self) -> &Path {
        self.active.path()
    }

    /// Logical offset after the last committed frame.
    pub fn logical_len(&self) -> u64 {
        self.active_start + self.active.committed_len()
    }

    /// Appends one frame to the in-memory group (nothing reaches disk
    /// until [`Self::commit`]).
    pub fn append(&mut self, payload: &[u8]) {
        self.active.append(payload);
    }

    /// Commits the buffered group (one `write`, fsync per policy) and
    /// returns the new logical length.
    pub fn commit(&mut self) -> io::Result<u64> {
        Ok(self.active_start + self.active.commit()?)
    }

    /// Commits and fsyncs regardless of policy; returns the new logical
    /// length.
    pub fn sync(&mut self) -> io::Result<u64> {
        Ok(self.active_start + self.active.sync()?)
    }

    /// Closes the active segment and starts a new one at the current
    /// logical offset, so that offset becomes a segment boundary — the
    /// caller does this right before capturing a snapshot, which is what
    /// makes whole segments reclaimable once the snapshot is the oldest
    /// kept.  The outgoing segment is fsynced first (except under the
    /// `Never` policy, which keeps its no-fsync contract and only
    /// commits).  A no-op when the active segment is empty (the boundary
    /// already exists).  Returns the boundary offset.
    pub fn rotate(&mut self) -> io::Result<u64> {
        let boundary = if self.policy == FsyncPolicy::Never {
            self.commit()?
        } else {
            self.sync()?
        };
        if self.active.committed_len() == 0 {
            return Ok(boundary);
        }
        let path = segment_path(&self.dir, &self.base, boundary);
        self.active = WalWriter::open(&path, 0, self.policy)?;
        self.active_start = boundary;
        Ok(boundary)
    }

    /// Deletes every non-active segment lying **wholly** behind `boundary`
    /// (logical `end ≤ boundary`) — the WAL-segment GC.  The caller passes
    /// the oldest snapshot offset it must still be able to recover from;
    /// bytes at or above it are never touched.  Returns
    /// `(segments_deleted, bytes_freed)`.
    pub fn truncate_before(&mut self, boundary: u64) -> io::Result<(usize, u64)> {
        let mut deleted = 0;
        let mut freed = 0;
        for segment in list_segments(&self.dir, &self.base)? {
            if segment.end() <= boundary && segment.path != self.active.path() {
                std::fs::remove_file(&segment.path)?;
                deleted += 1;
                freed += segment.len;
            }
        }
        if deleted > 0 && self.policy != FsyncPolicy::Never {
            // Make the removals durable: a resurrected segment after a
            // power cut would re-enter the chain below kept snapshots.
            File::open(&self.dir)?.sync_all()?;
        }
        Ok((deleted, freed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    fn open_fresh(dir: &Path) -> SegmentedWal {
        SegmentedWal::open(dir, "s", 0, FsyncPolicy::Never).unwrap()
    }

    #[test]
    fn single_segment_round_trip_keeps_the_legacy_name() {
        let dir = test_dir("seg-basic");
        let mut wal = open_fresh(dir.path());
        wal.append(b"one");
        wal.append(b"two");
        wal.commit().unwrap();
        assert_eq!(wal.active_path(), first_segment_path(dir.path(), "s"));
        drop(wal);
        let scan = recover(dir.path(), "s", 0).unwrap();
        assert_eq!(scan.frames, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(scan.defect.is_none());
    }

    #[test]
    fn rotation_chains_segments_and_recovery_spans_them() {
        let dir = test_dir("seg-rotate");
        let mut wal = open_fresh(dir.path());
        wal.append(b"alpha");
        wal.commit().unwrap();
        let b1 = wal.rotate().unwrap();
        wal.append(b"beta");
        wal.commit().unwrap();
        let b2 = wal.rotate().unwrap();
        // Rotating an empty active segment is a no-op.
        assert_eq!(wal.rotate().unwrap(), b2);
        wal.append(b"gamma");
        wal.commit().unwrap();
        let end = wal.logical_len();
        drop(wal);

        let segments = list_segments(dir.path(), "s").unwrap();
        assert_eq!(segments.len(), 3);
        assert_eq!(segments[0].start, 0);
        assert_eq!(segments[1].start, b1);
        assert_eq!(segments[2].start, b2);
        assert_eq!(segments[1].start, segments[0].end());
        assert_eq!(segments[2].start, segments[1].end());

        // Full replay.
        let scan = recover(dir.path(), "s", 0).unwrap();
        assert_eq!(
            scan.frames,
            vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]
        );
        assert_eq!(scan.valid_len, end);
        // Tail replay from each boundary.
        let scan = recover(dir.path(), "s", b1).unwrap();
        assert_eq!(scan.frames, vec![b"beta".to_vec(), b"gamma".to_vec()]);
        let scan = recover(dir.path(), "s", b2).unwrap();
        assert_eq!(scan.frames, vec![b"gamma".to_vec()]);
        let scan = recover(dir.path(), "s", end).unwrap();
        assert!(scan.frames.is_empty());
        assert!(scan.defect.is_none());
    }

    #[test]
    fn gc_deletes_only_segments_wholly_behind_the_boundary() {
        let dir = test_dir("seg-gc");
        let mut wal = open_fresh(dir.path());
        wal.append(b"old-1");
        wal.commit().unwrap();
        let b1 = wal.rotate().unwrap();
        wal.append(b"old-2");
        wal.commit().unwrap();
        let b2 = wal.rotate().unwrap();
        wal.append(b"live");
        wal.commit().unwrap();

        // A boundary inside segment 2 frees only segment 1.
        let (deleted, freed) = wal.truncate_before((b1 + b2) / 2).unwrap();
        assert_eq!(deleted, 1);
        assert!(freed > 0);
        // Everything from b2 is still recoverable.
        let scan = recover(dir.path(), "s", b2).unwrap();
        assert_eq!(scan.frames, vec![b"live".to_vec()]);
        // And from b1 too (segment 2 survived).
        let scan = recover(dir.path(), "s", b1).unwrap();
        assert_eq!(scan.frames, vec![b"old-2".to_vec(), b"live".to_vec()]);

        // A boundary at b2 frees segment 2; the active segment survives
        // even when wholly behind the boundary.
        let (deleted, _) = wal.truncate_before(wal.logical_len()).unwrap();
        assert_eq!(deleted, 1);
        let scan = recover(dir.path(), "s", b2).unwrap();
        assert_eq!(scan.frames, vec![b"live".to_vec()]);

        // Recovery from an offset below the first surviving segment
        // reports a defect instead of inventing data.
        let scan = recover(dir.path(), "s", 0).unwrap();
        assert!(scan.frames.is_empty());
        assert_eq!(scan.defect, Some(FrameDefect::Torn));
    }

    #[test]
    fn open_truncates_torn_tails_and_drops_unreachable_segments() {
        let dir = test_dir("seg-torn");
        let mut wal = open_fresh(dir.path());
        wal.append(b"keep");
        wal.commit().unwrap();
        let b1 = wal.rotate().unwrap();
        wal.append(b"later");
        wal.commit().unwrap();
        drop(wal);

        // Tear the first segment's frame: the whole second segment becomes
        // unreachable ("truncate, never resurrect").
        let first = first_segment_path(dir.path(), "s");
        let bytes = std::fs::read(&first).unwrap();
        std::fs::write(&first, &bytes[..bytes.len() - 2]).unwrap();
        let scan = recover(dir.path(), "s", 0).unwrap();
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(scan.defect.is_some());

        let wal = SegmentedWal::open(dir.path(), "s", scan.valid_len, FsyncPolicy::Never).unwrap();
        assert_eq!(wal.logical_len(), 0);
        drop(wal);
        // The later segment was deleted, the torn one truncated.
        let segments = list_segments(dir.path(), "s").unwrap();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].len, 0);
        let _ = b1;
    }

    #[test]
    fn chain_gaps_stop_recovery_at_the_last_intact_boundary() {
        let dir = test_dir("seg-gap");
        let mut wal = open_fresh(dir.path());
        wal.append(b"a");
        wal.commit().unwrap();
        let b1 = wal.rotate().unwrap();
        wal.append(b"b");
        wal.commit().unwrap();
        let b2 = wal.rotate().unwrap();
        wal.append(b"c");
        wal.commit().unwrap();
        drop(wal);
        // Delete the middle segment: frames after the gap must not be
        // resurrected.
        std::fs::remove_file(segment_path(dir.path(), "s", b1)).unwrap();
        let scan = recover(dir.path(), "s", 0).unwrap();
        assert_eq!(scan.frames, vec![b"a".to_vec()]);
        assert_eq!(scan.valid_len, b1);
        assert_eq!(scan.defect, Some(FrameDefect::Torn));
        let _ = b2;
    }

    #[test]
    fn missing_series_is_an_empty_log() {
        let dir = test_dir("seg-missing");
        let scan = recover(dir.path(), "nope", 0).unwrap();
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(scan.defect.is_none());
        assert_eq!(available_end(dir.path(), "nope").unwrap(), 0);
    }
}
