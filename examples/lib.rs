//! Shared helpers for the TIB-PRE examples.
//!
//! Each example binary (`quickstart`, `phr_disclosure`, `proxy_compromise`,
//! `travel_emergency`) is a standalone walk-through of the public API; this
//! library target only hosts small shared formatting utilities.

/// Prints a section banner so the example output is easy to follow.
pub fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Formats a byte length in a human-friendly way.
///
/// Values that would *round* to the next unit's threshold are promoted to
/// that unit, so the output never reads "1024.0 KiB".
pub fn human_bytes(len: usize) -> String {
    const KIB: f64 = 1024.0;
    const MIB: f64 = KIB * 1024.0;
    const GIB: f64 = MIB * 1024.0;

    let rounds_below = |value: f64| (value * 10.0).round() / 10.0 < KIB;
    if len < 1024 {
        format!("{len} B")
    } else if rounds_below(len as f64 / KIB) {
        format!("{:.1} KiB", len as f64 / KIB)
    } else if rounds_below(len as f64 / MIB) {
        format!("{:.1} MiB", len as f64 / MIB)
    } else {
        format!("{:.1} GiB", len as f64 / GIB)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(10), "10 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn human_bytes_edge_cases() {
        // Zero and the byte/KiB boundary.
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(1023), "1023 B");
        assert_eq!(human_bytes(1024), "1.0 KiB");
        assert_eq!(human_bytes(1025), "1.0 KiB");
        // One byte below an exact MiB used to print "1024.0 KiB".
        assert_eq!(human_bytes(1024 * 1024 - 1), "1.0 MiB");
        assert_eq!(human_bytes(1024 * 1024), "1.0 MiB");
        // Same promotion at the MiB/GiB boundary.
        assert_eq!(human_bytes(1024 * 1024 * 1024 - 1), "1.0 GiB");
        assert_eq!(human_bytes(1024 * 1024 * 1024), "1.0 GiB");
        // A value safely inside the KiB band still rounds normally.
        assert_eq!(human_bytes(1536), "1.5 KiB");
        assert_eq!(human_bytes(1023 * 1024), "1023.0 KiB");
    }
}
