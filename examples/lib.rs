//! Shared helpers for the TIB-PRE examples.
//!
//! Each example binary (`quickstart`, `phr_disclosure`, `proxy_compromise`,
//! `travel_emergency`) is a standalone walk-through of the public API; this
//! library target only hosts small shared formatting utilities.

/// Prints a section banner so the example output is easy to follow.
pub fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Formats a byte length in a human-friendly way.
pub fn human_bytes(len: usize) -> String {
    if len < 1024 {
        format!("{len} B")
    } else if len < 1024 * 1024 {
        format!("{:.1} KiB", len as f64 / 1024.0)
    } else {
        format!("{:.1} MiB", len as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(10), "10 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }
}
