//! The paper's travelling / emergency scenario (Section 5, step 2).
//!
//! "If Alice wishes to travel to the US, she can find a proxy there and store
//! her encrypted PHR data for the emergency case (type t3) there.  Then if
//! Alice needs emergency help in the US, the PHR data can be disclosed on
//! demand by the proxy."
//!
//! The example provisions exactly that, triggers an emergency, shows that the
//! US emergency team obtains only the emergency data set, and finally lets
//! Alice revoke the access after the trip.
//!
//! Run with: `cargo run --bin travel_emergency`
//!
//! The same flow, assertion-checked on every `cargo test`, lives as the
//! module doctest of `tibpre_phr::emergency`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_examples::banner;
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;
use tibpre_phr::{
    category::Category,
    emergency::{emergency_disclosure, provision_travel_access, standard_emergency_titles},
    patient::Patient,
    provider::HealthcareProvider,
    proxy_service::ProxyService,
    record::HealthRecord,
    store::EncryptedPhrStore,
    PhrError,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(1492);
    let params = PairingParams::insecure_toy();

    banner("Domains");
    let dutch_kgc = Kgc::setup(params.clone(), "nl-phr-kgc", &mut rng);
    let us_kgc = Kgc::setup(params.clone(), "us-provider-kgc", &mut rng);
    println!("Alice's KGC (NL) and the US provider KGC share public parameters only.");

    banner("Before the trip");
    let us_store = Arc::new(EncryptedPhrStore::new("us-hospital-store"));
    let mut us_proxy = ProxyService::new("us-hospital-proxy", us_store.clone());
    let mut alice = Patient::new("alice@nl-phr.example", &dutch_kgc);

    // Alice mirrors the standing emergency data set to the US store.
    for title in standard_emergency_titles() {
        let record = HealthRecord::new(
            alice.identity().clone(),
            Category::Emergency,
            title,
            format!("[{title}] — see wallet card").into_bytes(),
        );
        let id = alice.store_record(&us_store, &record, &mut rng).unwrap();
        println!("  mirrored emergency record {id}: '{title}'");
    }
    // She also happens to keep some non-emergency data in the same store.
    let oncology = HealthRecord::new(
        alice.identity().clone(),
        Category::IllnessHistory,
        "oncology follow-up",
        b"remission since 2006".to_vec(),
    );
    let oncology_id = alice.store_record(&us_store, &oncology, &mut rng).unwrap();
    println!("  also stored illness-history record {oncology_id} (NOT for emergencies)");

    let er_team = Identity::new("er-team@us-hospital.example");
    let er_provider = HealthcareProvider::new(us_kgc.extract(&er_team));
    provision_travel_access(
        &mut alice,
        &er_team,
        us_kgc.public_params(),
        &mut us_proxy,
        &mut rng,
    )
    .unwrap();
    println!(
        "  emergency access provisioned for {er_team} via {}",
        us_proxy.name()
    );

    banner("Emergency in the US");
    let disclosed = emergency_disclosure(&us_proxy, alice.identity(), &er_provider).unwrap();
    println!(
        "the emergency team obtained {} records on demand:",
        disclosed.len()
    );
    for record in &disclosed {
        println!(
            "  [{}] {} -> \"{}\"",
            record.category,
            record.title,
            String::from_utf8_lossy(&record.body)
        );
    }
    // The oncology record stays sealed, even though it sits in the same store
    // behind the same proxy.
    match us_proxy.disclose(alice.identity(), oncology_id, &er_team) {
        Err(PhrError::AccessDenied { .. }) => {
            println!("the illness-history record remained sealed ✓")
        }
        other => println!("unexpected: {other:?}"),
    }

    banner("After the trip");
    alice
        .revoke_access(&Category::Emergency, &er_team, &mut us_proxy)
        .unwrap();
    match emergency_disclosure(&us_proxy, alice.identity(), &er_provider) {
        Err(PhrError::AccessDenied { .. }) => println!("access revoked; the proxy now refuses ✓"),
        other => println!("unexpected: {other:?}"),
    }

    banner("Audit trail kept by the US store");
    for event in us_store.audit_snapshot() {
        println!("  {event:?}");
    }
}
