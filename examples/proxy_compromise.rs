//! Proxy compromise: what does an attacker actually get?
//!
//! The paper's central security argument (Section 1.1 and Section 5) is that a
//! corrupted proxy — or a proxy colluding with the delegatee it serves — can
//! expose at most the categories whose re-encryption keys it holds.  This
//! example makes that concrete by simulating the same compromise against
//!
//! 1. the **type-and-identity-based scheme** (one proxy per category), and
//! 2. the **identity-only PRE baseline** (one key converts everything),
//!
//! and counting how many of the patient's records each attacker can recover.
//!
//! Run with: `cargo run --bin proxy_compromise`
//!
//! The same containment claim, assertion-checked on every `cargo test`,
//! lives as the doctest on `tibpre_phr::ProxyService::simulate_compromise`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_core::baseline::identity_pre;
use tibpre_core::Delegatee;
use tibpre_examples::banner;
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;
use tibpre_phr::{
    category::Category, patient::Patient, proxy_service::ProxyService, record::HealthRecord,
    store::EncryptedPhrStore,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let params = PairingParams::insecure_toy();
    let patient_kgc = Kgc::setup(params.clone(), "patients", &mut rng);
    let provider_kgc = Kgc::setup(params.clone(), "providers", &mut rng);

    let categories = [
        Category::IllnessHistory,
        Category::Medication,
        Category::LabResults,
        Category::FoodStatistics,
        Category::Emergency,
    ];
    let records_per_category = 4usize;

    banner("Scenario");
    println!(
        "Alice stores {} records in {} categories; the attacker fully corrupts the proxy \
         serving the 'food-statistics' grantee.",
        records_per_category * categories.len(),
        categories.len()
    );

    // ---------------------------------------------------------------- TIB-PRE
    banner("Type-and-identity-based PRE (this paper)");
    let store = Arc::new(EncryptedPhrStore::new("phr-store"));
    let mut alice = Patient::new("alice@phr.example", &patient_kgc);
    // One proxy per category, as the paper suggests.
    let mut proxies: Vec<ProxyService> = categories
        .iter()
        .map(|c| ProxyService::new(format!("proxy-{c}"), store.clone()))
        .collect();

    for category in &categories {
        for i in 0..records_per_category {
            let record = HealthRecord::new(
                alice.identity().clone(),
                category.clone(),
                format!("{category} #{i}"),
                format!("secret payload {category}/{i}").into_bytes(),
            );
            alice.store_record(&store, &record, &mut rng).unwrap();
        }
    }

    // Each category is granted to a different provider via its own proxy.
    let grantees: Vec<Identity> = categories
        .iter()
        .map(|c| Identity::new(format!("provider-for-{c}@example")))
        .collect();
    for ((category, grantee), proxy) in categories.iter().zip(&grantees).zip(proxies.iter_mut()) {
        alice
            .grant_access(
                category.clone(),
                grantee,
                provider_kgc.public_params(),
                proxy,
                &mut rng,
            )
            .unwrap();
    }

    // The attacker corrupts the proxy holding the food-statistics key and also
    // controls that category's grantee (worst case: full collusion).
    let corrupted_index = categories
        .iter()
        .position(|c| *c == Category::FoodStatistics)
        .unwrap();
    let corrupted_proxy = &proxies[corrupted_index];
    let colluding_grantee = &grantees[corrupted_index];
    let exposed = corrupted_proxy.simulate_compromise(alice.identity(), colluding_grantee);
    let total = store.count_for_patient(alice.identity());
    println!(
        "records exposed: {} / {}  ({:.0}%)",
        exposed.len(),
        total,
        100.0 * exposed.len() as f64 / total as f64
    );
    println!("only the corrupted category leaks; every other category stays sealed ✓");

    // ------------------------------------------------- identity-only baseline
    banner("Identity-only PRE baseline (no types)");
    println!(
        "With a traditional IBE-PRE there is a single re-encryption key for the \
         delegatee; the corrupted proxy can convert every ciphertext."
    );
    let delegator = identity_pre::IdentityPreDelegator::new(
        patient_kgc.public_params().clone(),
        patient_kgc.extract(&Identity::new("alice@phr.example")),
    );
    let colluder = Identity::new("colluding-provider@example");
    let colluder_key = provider_kgc.extract(&colluder);
    let rk = delegator
        .make_reencryption_key(&colluder, provider_kgc.public_params(), &mut rng)
        .unwrap();

    let mut exposed_baseline = 0usize;
    let total_baseline = records_per_category * categories.len();
    let delegatee = Delegatee::new(colluder_key);
    for category in &categories {
        for i in 0..records_per_category {
            let secret = params.random_gt(&mut rng);
            let ct = delegator.encrypt(&secret, &mut rng);
            let converted = identity_pre::re_encrypt(&ct, &rk);
            if delegatee.decrypt_reencrypted(&converted).unwrap() == secret {
                exposed_baseline += 1;
            }
            let _ = (category, i);
        }
    }
    println!(
        "records exposed: {} / {}  ({:.0}%)",
        exposed_baseline,
        total_baseline,
        100.0 * exposed_baseline as f64 / total_baseline as f64
    );

    banner("Conclusion");
    println!(
        "TIB-PRE contains the breach to one category ({}/{} records); the identity-only \
         baseline loses everything ({}/{}).  This is Figure-3-style evidence for the paper's claim.",
        exposed.len(),
        total,
        exposed_baseline,
        total_baseline
    );
}
