//! Quickstart: the type-and-identity-based PRE scheme in ~60 lines.
//!
//! Walks through the paper's algorithms once, printing what happens at every
//! step: setup of the two domains, typed encryption, re-encryption-key
//! generation, proxy conversion, and delegatee decryption — plus the
//! fine-grainedness check (a key for one type refuses to convert another).
//!
//! Run with: `cargo run --bin quickstart`
//!
//! The same flow, assertion-checked on every `cargo test`, lives as the
//! "Quick start" doctest on the `tibpre_core` crate root.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tibpre_core::{proxy, Delegatee, Delegator, TypeTag};
use tibpre_examples::banner;
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::{PairingParams, SecurityLevel};

fn main() {
    let mut rng = StdRng::seed_from_u64(2008);

    banner("Setup: shared pairing parameters and two KGC domains");
    // The cached 80-bit parameter set matches the paper-era security level.
    // (Use `PairingParams::generate` with a fresh RNG in production.)
    let params = PairingParams::cached(SecurityLevel::Low80);
    println!("security level : {}", params.level().label());
    println!("group order q  : {} bits", params.q().bits());
    println!("field prime p  : {} bits", params.p().bits());

    let kgc1 = Kgc::setup(params.clone(), "patient-domain", &mut rng);
    let kgc2 = Kgc::setup(params.clone(), "clinician-domain", &mut rng);
    println!("KGC1 (delegator domain) and KGC2 (delegatee domain) share the parameters");

    banner("Key extraction");
    let alice = Identity::new("alice@phr.example");
    let doctor = Identity::new("dr.smith@heart-clinic.example");
    let delegator = Delegator::new(kgc1.public_params().clone(), kgc1.extract(&alice));
    let delegatee = Delegatee::new(kgc2.extract(&doctor));
    println!("delegator : {alice}  (one key pair, however many types she uses)");
    println!("delegatee : {doctor}");

    banner("Encrypt1: typed encryption to herself");
    let illness = TypeTag::new("illness-history");
    let diet = TypeTag::new("food-statistics");
    let secret_illness = params.random_gt(&mut rng);
    let secret_diet = params.random_gt(&mut rng);
    let ct_illness = delegator.encrypt_typed(&secret_illness, &illness, &mut rng);
    let ct_diet = delegator.encrypt_typed(&secret_diet, &diet, &mut rng);
    println!("encrypted one message of type '{illness}' and one of type '{diet}'");
    println!(
        "typed ciphertext size: {} bytes",
        ct_illness.to_bytes().len()
    );
    assert_eq!(
        delegator.decrypt_typed(&ct_illness).unwrap(),
        secret_illness
    );
    println!("Decrypt1 by the delegator round-trips ✓");

    banner("Pextract: delegate ONLY the illness history to the doctor");
    let rk = delegator
        .make_reencryption_key(&doctor, kgc2.public_params(), &illness, &mut rng)
        .expect("domains share parameters");
    println!(
        "re-encryption key bound to (delegator={}, delegatee={}, type={})",
        rk.delegator(),
        rk.delegatee(),
        rk.type_tag()
    );
    println!("re-encryption key size: {} bytes", rk.to_bytes().len());

    banner("Preenc: the proxy converts the illness-history ciphertext");
    let transformed = proxy::re_encrypt(&ct_illness, &rk).expect("types match");
    println!("proxy produced a re-encrypted ciphertext (Alice stayed offline)");

    banner("Delegatee decryption");
    let recovered = delegatee.decrypt_reencrypted(&transformed).unwrap();
    assert_eq!(recovered, secret_illness);
    println!("the doctor recovered the illness-history message ✓");

    banner("Fine-grainedness: the same key refuses the diet ciphertext");
    match proxy::re_encrypt(&ct_diet, &rk) {
        Err(e) => println!("proxy refused, as it must: {e}"),
        Ok(_) => unreachable!("a type mismatch must be refused"),
    }
    println!();
    println!("Done: one key pair, per-type delegation, no trust in the proxy beyond availability.");
}
