//! One-shot generator of the golden legacy-format store fixture.
//!
//! This binary was run **once, at the PR-4 tree** (commit `e2b7967`, before
//! `tibpre-wire` existed), to produce `tests/fixtures/v0-store`: a durable
//! PHR store plus a proxy WAL in the pre-envelope byte formats.  The
//! committed fixture is the artifact; the source is kept for provenance
//! and as documentation of exactly what the fixture contains (the
//! deterministic seeds here are what `tests/tests/format_compat.rs` uses
//! to re-derive the key material and decrypt the fixture's records).
//!
//! Running it against the *current* tree would serialize in the current
//! default format and therefore NOT reproduce a v0 fixture — so it refuses
//! to overwrite an existing fixture directory.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_core::Delegator;
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;
use tibpre_phr::category::Category;
use tibpre_phr::durable::Durability;
use tibpre_phr::proxy_service::ProxyService;
use tibpre_phr::store::EncryptedPhrStore;
use tibpre_storage::FsyncPolicy;

fn main() {
    let out = std::path::PathBuf::from("tests/fixtures/v0-store");
    if out.exists() {
        eprintln!(
            "refusing to overwrite {}: the golden fixture must stay in the \
             legacy format it was generated in (see the module docs)",
            out.display()
        );
        std::process::exit(1);
    }
    std::fs::create_dir_all(&out).unwrap();

    let params = PairingParams::insecure_toy();
    let mut rng = StdRng::seed_from_u64(4242);
    let patient_kgc = Kgc::setup(params.clone(), "patients", &mut rng);
    let provider_kgc = Kgc::setup(params.clone(), "providers", &mut rng);

    let alice = Identity::new("alice@phr.example");
    let bob = Identity::new("bob@phr.example");
    let doctor = Identity::new("dr.smith@clinic.example");
    let alice_keys = Delegator::new(
        patient_kgc.public_params().clone(),
        patient_kgc.extract(&alice),
    );
    let bob_keys = Delegator::new(
        patient_kgc.public_params().clone(),
        patient_kgc.extract(&bob),
    );

    let durability = Durability::new(params.clone())
        .shards(2)
        .fsync(FsyncPolicy::Never)
        .snapshot_every(3);
    let store = Arc::new(EncryptedPhrStore::open(out.join("store"), durability.clone()).unwrap());

    let payloads: [(&Delegator, &Identity, Category, &str, &[u8]); 6] = [
        (
            &alice_keys,
            &alice,
            Category::Emergency,
            "blood-type",
            b"O-; allergies: penicillin",
        ),
        (
            &alice_keys,
            &alice,
            Category::IllnessHistory,
            "2007",
            b"angioplasty",
        ),
        (
            &alice_keys,
            &alice,
            Category::FoodStatistics,
            "diet",
            b"low sodium",
        ),
        (&bob_keys, &bob, Category::Emergency, "blood-type", b"AB+"),
        (&bob_keys, &bob, Category::LabResults, "lipids", b"ldl 130"),
        (
            &alice_keys,
            &alice,
            Category::Emergency,
            "implant",
            b"pacemaker model X",
        ),
    ];
    let mut ids = Vec::new();
    for (keys, patient, category, title, body) in payloads {
        let aad = format!("{}|{}|{}", patient.display(), category.label(), title);
        let ct = keys.encrypt_bytes(body, aad.as_bytes(), &category.type_tag(), &mut rng);
        ids.push(store.put(patient, &category, title, ct));
    }
    // A delete, so recovery must not resurrect the record.
    store.delete(ids[2], &alice).unwrap();

    // A durable proxy with one active and one revoked grant.
    let mut proxy = ProxyService::open(
        "fixture-proxy",
        store.clone(),
        out.join("proxy"),
        &durability,
    )
    .unwrap();
    let rk_emergency = alice_keys
        .make_reencryption_key(
            &doctor,
            provider_kgc.public_params(),
            &Category::Emergency.type_tag(),
            &mut rng,
        )
        .unwrap();
    let rk_illness = alice_keys
        .make_reencryption_key(
            &doctor,
            provider_kgc.public_params(),
            &Category::IllnessHistory.type_tag(),
            &mut rng,
        )
        .unwrap();
    proxy.install_key(rk_emergency);
    proxy.install_key(rk_illness);
    proxy.revoke_key(&alice, &Category::IllnessHistory, &doctor);
    proxy.disclose(&alice, ids[0], &doctor).unwrap();

    store.sync().unwrap();
    println!("fixture written to {}", out.display());
    println!("record ids: {ids:?}");
}
