//! Fine-grained PHR disclosure (Section 5 of the paper).
//!
//! Alice categorises her personal health record, stores everything encrypted
//! at an outsourced store, and grants each caregiver access to exactly the
//! categories they need, each through a different proxy.  The example prints
//! who can read what, and shows the audit trail at the end.
//!
//! Run with: `cargo run --bin phr_disclosure`
//!
//! The same flow, assertion-checked on every `cargo test`, lives as the
//! crate-root doctest of `tibpre_phr`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tibpre_examples::{banner, human_bytes};
use tibpre_ibe::{Identity, Kgc};
use tibpre_pairing::PairingParams;
use tibpre_phr::{
    category::Category, patient::Patient, provider::HealthcareProvider,
    proxy_service::ProxyService, record::HealthRecord, store::EncryptedPhrStore, PhrError,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let params = PairingParams::insecure_toy();

    banner("Domains and infrastructure");
    let patient_kgc = Kgc::setup(params.clone(), "national-phr-kgc", &mut rng);
    let provider_kgc = Kgc::setup(params.clone(), "care-provider-kgc", &mut rng);
    let store = Arc::new(EncryptedPhrStore::new("outsourced-phr-store"));
    let mut hospital_proxy = ProxyService::new("hospital-proxy", store.clone());
    let mut wellness_proxy = ProxyService::new("wellness-proxy", store.clone());
    println!("store: {store:?}");
    println!("proxies: {hospital_proxy:?}, {wellness_proxy:?}");

    banner("Alice fills her PHR");
    let mut alice = Patient::new("alice@phr.example", &patient_kgc);
    let records = vec![
        (
            Category::IllnessHistory,
            "2007 angioplasty",
            "stent placed in LAD, no complications",
        ),
        (
            Category::IllnessHistory,
            "hypertension",
            "diagnosed 2005, on lisinopril",
        ),
        (
            Category::Medication,
            "current prescriptions",
            "lisinopril 10mg, aspirin 80mg",
        ),
        (
            Category::FoodStatistics,
            "2008-W14 food diary",
            "2100 kcal/day average, low sodium",
        ),
        (Category::Emergency, "blood group", "O negative"),
        (Category::Emergency, "allergies", "penicillin"),
        (
            Category::MentalHealth,
            "therapy notes",
            "…strictly private…",
        ),
    ];
    let mut stored = Vec::new();
    for (category, title, body) in &records {
        let record = HealthRecord::new(
            alice.identity().clone(),
            category.clone(),
            *title,
            body.as_bytes().to_vec(),
        );
        let id = alice.store_record(&store, &record, &mut rng).unwrap();
        stored.push((id, category.clone(), title.to_string()));
        println!(
            "  stored {id} [{category}] '{title}' ({})",
            human_bytes(body.len())
        );
    }
    println!(
        "the store only ever sees ciphertexts: {} records",
        store.record_count()
    );

    banner("Care team");
    let cardiologist = Identity::new("dr.smith@heart-clinic.example");
    let dietician = Identity::new("j.doe@wellness.example");
    let cardiologist_provider = HealthcareProvider::new(provider_kgc.extract(&cardiologist));
    let dietician_provider = HealthcareProvider::new(provider_kgc.extract(&dietician));
    println!("cardiologist: {cardiologist}");
    println!("dietician   : {dietician}");

    banner("Alice's disclosure policy (one key pair, per-category grants)");
    alice
        .grant_access(
            Category::IllnessHistory,
            &cardiologist,
            provider_kgc.public_params(),
            &mut hospital_proxy,
            &mut rng,
        )
        .unwrap();
    alice
        .grant_access(
            Category::Medication,
            &cardiologist,
            provider_kgc.public_params(),
            &mut hospital_proxy,
            &mut rng,
        )
        .unwrap();
    alice
        .grant_access(
            Category::FoodStatistics,
            &dietician,
            provider_kgc.public_params(),
            &mut wellness_proxy,
            &mut rng,
        )
        .unwrap();
    for grant in alice.policy().grants() {
        println!(
            "  grant: {} → {} via {}",
            grant.category, grant.grantee, grant.proxy
        );
    }

    banner("Disclosures");
    for (id, category, title) in &stored {
        let attempt = |proxy: &ProxyService, provider: &HealthcareProvider| {
            proxy
                .disclose(alice.identity(), *id, provider.identity())
                .map(|bundle| provider.open(&bundle).unwrap())
        };
        match attempt(&hospital_proxy, &cardiologist_provider) {
            Ok(rec) => println!(
                "  cardiologist read {id} [{category}] '{title}': \"{}\"",
                String::from_utf8_lossy(&rec.body)
            ),
            Err(PhrError::AccessDenied { .. }) => {
                println!("  cardiologist DENIED on {id} [{category}] '{title}'")
            }
            Err(e) => println!("  cardiologist error on {id}: {e}"),
        }
        match attempt(&wellness_proxy, &dietician_provider) {
            Ok(rec) => println!(
                "  dietician    read {id} [{category}] '{title}': \"{}\"",
                String::from_utf8_lossy(&rec.body)
            ),
            Err(PhrError::AccessDenied { .. }) => {
                println!("  dietician    DENIED on {id} [{category}] '{title}'")
            }
            Err(e) => println!("  dietician    error on {id}: {e}"),
        }
    }

    banner("Alice reads her own mental-health notes directly");
    let mental_ids = store.list_for_patient_category(alice.identity(), &Category::MentalHealth);
    let own = alice.read_own_record(&store, mental_ids[0]).unwrap();
    println!(
        "  '{}' -> \"{}\"",
        own.title,
        String::from_utf8_lossy(&own.body)
    );

    banner("Revocation");
    alice
        .revoke_access(&Category::Medication, &cardiologist, &mut hospital_proxy)
        .unwrap();
    let medication_id = stored
        .iter()
        .find(|(_, c, _)| *c == Category::Medication)
        .map(|(id, _, _)| *id)
        .unwrap();
    match hospital_proxy.disclose(alice.identity(), medication_id, &cardiologist) {
        Err(PhrError::AccessDenied { .. }) => {
            println!("  medication access revoked: further requests are denied ✓")
        }
        other => println!("  unexpected: {other:?}"),
    }

    banner("Audit trail (store)");
    for event in store.audit_snapshot() {
        println!("  {event:?}");
    }
}
